package othello

import "testing"

// BenchmarkMoveGeneration measures the bitboard move generator.
func BenchmarkMoveGeneration(b *testing.B) {
	pos := MidgamePosition(10)
	for i := 0; i < b.N; i++ {
		if pos.Moves() == 0 {
			b.Fatal("no moves")
		}
	}
}

// BenchmarkApply measures move application with flips.
func BenchmarkApply(b *testing.B) {
	pos := MidgamePosition(10)
	sq := MoveList(pos.Moves())[0]
	for i := 0; i < b.N; i++ {
		pos.Apply(sq)
	}
}

// BenchmarkSearchDepth5 reports real search throughput (nodes/op metric).
func BenchmarkSearchDepth5(b *testing.B) {
	pos := MidgamePosition(10)
	var nodes int64
	for i := 0; i < b.N; i++ {
		var n int64
		negamax(pos, 5, -Inf, Inf, &n)
		nodes += n
	}
	b.ReportMetric(float64(nodes)/float64(b.N), "nodes/op")
}
