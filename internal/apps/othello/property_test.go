package othello

import (
	"math/bits"
	"testing"
	"testing/quick"
)

// randomPosition plays a deterministic pseudo-random legal game prefix.
func randomPosition(seed uint64, plies int) Board {
	b := Initial()
	rng := seed | 1
	for i := 0; i < plies; i++ {
		moves := MoveList(b.Moves())
		if len(moves) == 0 {
			b = b.Pass()
			moves = MoveList(b.Moves())
			if len(moves) == 0 {
				return b
			}
		}
		rng = rng*6364136223846793005 + 1442695040888963407
		b = b.Apply(moves[int(rng>>33)%len(moves)])
	}
	return b
}

// Property: legal moves always lie on empty squares.
func TestMovesOnEmptySquaresProperty(t *testing.T) {
	f := func(seed uint64, pliesRaw uint8) bool {
		b := randomPosition(seed, int(pliesRaw%40))
		return b.Moves()&(b.Own|b.Opp) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: applying a legal move adds exactly one disc, flips only
// opponent discs, and never destroys the mover's discs.
func TestApplyInvariantsProperty(t *testing.T) {
	f := func(seed uint64, pliesRaw uint8) bool {
		b := randomPosition(seed, int(pliesRaw%40))
		moves := MoveList(b.Moves())
		if len(moves) == 0 {
			return true
		}
		for _, sq := range moves {
			next := b.Apply(sq)
			// next is from the opponent's perspective.
			moverAfter, oppAfter := next.Opp, next.Own
			if bits.OnesCount64(moverAfter|oppAfter) != bits.OnesCount64(b.Own|b.Opp)+1 {
				return false
			}
			if b.Own&^moverAfter != 0 {
				return false // a mover disc vanished
			}
			flipped := oppAfter ^ (b.Opp &^ moverAfter)
			_ = flipped
			if oppAfter&moverAfter != 0 {
				return false // overlapping discs
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the evaluation is antisymmetric under side swap.
func TestEvaluateAntisymmetricProperty(t *testing.T) {
	f := func(seed uint64, pliesRaw uint8) bool {
		b := randomPosition(seed, int(pliesRaw%40))
		return Evaluate(b) == -Evaluate(b.Pass())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: a double pass restores the original position.
func TestDoublePassIdentityProperty(t *testing.T) {
	f := func(seed uint64, pliesRaw uint8) bool {
		b := randomPosition(seed, int(pliesRaw%40))
		return b.Pass().Pass() == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: deeper alpha-beta never visits fewer nodes than depth-1 and
// always returns a value in the legal range.
func TestSearchBoundsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		b := randomPosition(seed, 12)
		if b.Moves() == 0 {
			return true
		}
		var n1, n3 int64
		v1 := negamax(b, 1, -Inf, Inf, &n1)
		v3 := negamax(b, 3, -Inf, Inf, &n3)
		if n3 < n1 {
			return false
		}
		bound := 64 * 1000
		return v1 > -bound && v1 < bound && v3 > -bound && v3 < bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
