package gauss

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
)

func TestBuildSystemDeterministicAndDominant(t *testing.T) {
	p := Params{N: 50, Seed: 3}
	a1, b1 := BuildSystem(p)
	a2, b2 := BuildSystem(p)
	for i := 0; i < p.N; i++ {
		if b1[i] != b2[i] {
			t.Fatal("b not deterministic")
		}
		off := 0.0
		for j := 0; j < p.N; j++ {
			if a1[i][j] != a2[i][j] {
				t.Fatal("A not deterministic")
			}
			if i != j {
				off += math.Abs(a1[i][j])
			}
		}
		if a1[i][i] <= off {
			t.Fatalf("row %d not strictly dominant: %v vs %v", i, a1[i][i], off)
		}
	}
}

func TestSequentialConverges(t *testing.T) {
	res := Sequential(Params{N: 80, Seed: 1})
	if res.Sweeps >= 200 {
		t.Fatalf("did not converge in %d sweeps", res.Sweeps)
	}
	if res.Residual > 1e-5 {
		t.Fatalf("residual %v too large", res.Residual)
	}
	if res.Ops <= 0 {
		t.Fatal("no ops counted")
	}
}

func TestRowRangePartition(t *testing.T) {
	for _, tc := range []struct{ n, p int }{{10, 3}, {100, 7}, {5, 5}, {9, 4}} {
		covered := 0
		prevHi := 0
		for id := 0; id < tc.p; id++ {
			lo, hi := rowRange(tc.n, tc.p, id)
			if lo != prevHi {
				t.Fatalf("n=%d p=%d: gap at PE %d", tc.n, tc.p, id)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != tc.n {
			t.Fatalf("n=%d p=%d: covered %d rows", tc.n, tc.p, covered)
		}
	}
}

func TestParallelMatchesSequentialSolution(t *testing.T) {
	p := Params{N: 60, Seed: 2}
	seq := Sequential(p)
	for _, npe := range []int{1, 2, 4} {
		npe := npe
		t.Run(fmt.Sprintf("p%d", npe), func(t *testing.T) {
			var par *Result
			res, err := core.Run(core.Config{NumPE: npe, Transport: core.TransportInproc},
				func(pe *core.PE) error {
					r, err := Parallel(pe, p)
					if err != nil {
						return err
					}
					if pe.ID() == 0 {
						par = r
					}
					pe.Barrier()
					return nil
				})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if err := res.FirstErr(); err != nil {
				t.Fatal(err)
			}
			if par.Residual > 1e-5 {
				t.Fatalf("parallel residual %v", par.Residual)
			}
			for i := range par.X {
				if math.Abs(par.X[i]-seq.X[i]) > 1e-5 {
					t.Fatalf("x[%d] = %v vs sequential %v", i, par.X[i], seq.X[i])
				}
			}
		})
	}
}

func TestParallelSinglePEEqualsSequentialExactly(t *testing.T) {
	p := Params{N: 40, Seed: 5}
	seq := Sequential(p)
	res, err := core.Run(core.Config{NumPE: 1, Transport: core.TransportInproc},
		func(pe *core.PE) error {
			par, err := Parallel(pe, p)
			if err != nil {
				return err
			}
			if par.Sweeps != seq.Sweeps {
				return fmt.Errorf("sweeps %d vs %d", par.Sweeps, seq.Sweeps)
			}
			for i := range par.X {
				if par.X[i] != seq.X[i] {
					return fmt.Errorf("x[%d] differs: %v vs %v", i, par.X[i], seq.X[i])
				}
			}
			return nil
		})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := res.FirstErr(); err != nil {
		t.Fatal(err)
	}
}

func TestParallelRejectsTooManyPEs(t *testing.T) {
	res, err := core.Run(core.Config{NumPE: 4, Transport: core.TransportInproc},
		func(pe *core.PE) error {
			_, err := Parallel(pe, Params{N: 2})
			if err == nil {
				return fmt.Errorf("expected error for N < PEs")
			}
			return nil
		})
	if err != nil || res.FirstErr() != nil {
		t.Fatalf("%v %v", err, res.FirstErr())
	}
}

func TestParallelOnSimulatedClusterChargesTime(t *testing.T) {
	res, err := core.Run(core.Config{NumPE: 4, Platform: platform.PentiumIILinux, Seed: 1},
		func(pe *core.PE) error {
			r, err := Parallel(pe, Params{N: 64, Seed: 1})
			if err != nil {
				return err
			}
			if r.Residual > 1e-5 {
				return fmt.Errorf("residual %v", r.Residual)
			}
			return nil
		})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := res.FirstErr(); err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	if res.Total.ComputeTime <= 0 || res.Total.MsgsSent == 0 {
		t.Fatalf("stats incomplete: %+v", res.Total)
	}
}

func TestSORConvergesAndOmegaOneIsGaussSeidel(t *testing.T) {
	base := Params{N: 60, Seed: 3}
	plain := Sequential(base)
	omega1 := base
	omega1.Omega = 1
	same := Sequential(omega1)
	if same.Sweeps != plain.Sweeps {
		t.Fatalf("omega=1 changed sweeps: %d vs %d", same.Sweeps, plain.Sweeps)
	}
	for i := range plain.X {
		if same.X[i] != plain.X[i] {
			t.Fatal("omega=1 changed the solution")
		}
	}
	// Under-relaxation still converges to the same solution.
	under := base
	under.Omega = 0.8
	sor := Sequential(under)
	if sor.Residual > 1e-5 {
		t.Fatalf("SOR residual %v", sor.Residual)
	}
	for i := range plain.X {
		if math.Abs(sor.X[i]-plain.X[i]) > 1e-6 {
			t.Fatalf("SOR solution diverges at %d", i)
		}
	}
}

func TestSORRejectsBadOmega(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for omega >= 2")
		}
	}()
	Sequential(Params{N: 10, Omega: 2.5})
}

func TestSORParallelAgrees(t *testing.T) {
	p := Params{N: 48, Seed: 2, Omega: 0.9}
	seq := Sequential(p)
	res, err := core.Run(core.Config{NumPE: 3, Transport: core.TransportInproc},
		func(pe *core.PE) error {
			r, err := Parallel(pe, p)
			if err != nil {
				return err
			}
			if r.Residual > 1e-5 {
				return fmt.Errorf("residual %v", r.Residual)
			}
			for i := range r.X {
				if math.Abs(r.X[i]-seq.X[i]) > 1e-5 {
					return fmt.Errorf("x[%d] differs", i)
				}
			}
			return nil
		})
	if err != nil || res.FirstErr() != nil {
		t.Fatalf("%v %v", err, res.FirstErr())
	}
}
