package gauss

import (
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/wire"
)

// The coalescing regression guard: with vectored per-home transfers, the
// reference Gauss-Seidel run (N=300, p=4, simulated Ethernet) must stay
// well under the seed's message volume. The seed issued 1696 messages over
// 17 sweeps (99.8/sweep, one OpRead per block-sized run of the row fetch);
// vectored transfers bring that to 1040 (61.2/sweep). The bound of 75
// messages/sweep sits between the two so a regression to per-run messaging
// fails loudly while leaving headroom for protocol tweaks.
func TestParallelMessageVolume(t *testing.T) {
	var sweeps int
	res, err := core.Run(core.Config{NumPE: 4, Platform: platform.SparcSunOS, Seed: 1}, func(pe *core.PE) error {
		r, err := Parallel(pe, Params{N: 300, MaxSweeps: 20})
		if pe.ID() == 0 && r != nil {
			sweeps = r.Sweeps
		}
		return err
	})
	if err != nil || res.FirstErr() != nil {
		t.Fatal(err, res.FirstErr())
	}
	if sweeps == 0 {
		t.Fatal("no sweeps recorded")
	}
	perSweep := float64(res.Total.MsgsSent) / float64(sweeps)
	t.Logf("gauss N=300 p=4: sweeps=%d msgs=%d (%.1f/sweep) readV=%d read=%d",
		sweeps, res.Total.MsgsSent, perSweep,
		res.Total.ByOp[wire.OpReadV].Msgs, res.Total.ByOp[wire.OpRead].Msgs)
	if perSweep > 75 {
		t.Errorf("%.1f messages/sweep, want <= 75 (seed was 99.8; vectored is 61.2)", perSweep)
	}
	if res.Total.ByOp[wire.OpReadV].Msgs == 0 {
		t.Errorf("row fetches did not use vectored reads")
	}
}
