package gauss

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
)

func TestParallelMPMatchesParallelExactly(t *testing.T) {
	p := Params{N: 48, Seed: 4}
	for _, npe := range []int{1, 3, 4} {
		npe := npe
		t.Run(fmt.Sprintf("p%d", npe), func(t *testing.T) {
			var dsm, msg *Result
			res, err := core.Run(core.Config{NumPE: npe, Transport: core.TransportInproc},
				func(pe *core.PE) error {
					r1, err := Parallel(pe, p)
					if err != nil {
						return err
					}
					pe.Barrier()
					r2, err := ParallelMP(pe, p)
					if err != nil {
						return err
					}
					if pe.ID() == 0 {
						dsm, msg = r1, r2
					}
					pe.Barrier()
					return nil
				})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if err := res.FirstErr(); err != nil {
				t.Fatal(err)
			}
			if dsm.Sweeps != msg.Sweeps {
				t.Fatalf("sweeps differ: DSM %d vs MP %d", dsm.Sweeps, msg.Sweeps)
			}
			for i := range dsm.X {
				if dsm.X[i] != msg.X[i] {
					t.Fatalf("x[%d]: DSM %v vs MP %v", i, dsm.X[i], msg.X[i])
				}
			}
		})
	}
}

func TestParallelMPOnSimulatedCluster(t *testing.T) {
	res, err := core.Run(core.Config{NumPE: 4, Platform: platform.RS6000AIX, Seed: 1},
		func(pe *core.PE) error {
			r, err := ParallelMP(pe, Params{N: 64, Seed: 1})
			if err != nil {
				return err
			}
			if r.Residual > 1e-5 {
				return fmt.Errorf("residual %v", r.Residual)
			}
			return nil
		})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := res.FirstErr(); err != nil {
		t.Fatal(err)
	}
	if res.Total.MsgsSent == 0 {
		t.Fatal("MP variant sent no messages")
	}
}

func TestParallelMPRejectsTooManyPEs(t *testing.T) {
	res, err := core.Run(core.Config{NumPE: 4, Transport: core.TransportInproc},
		func(pe *core.PE) error {
			if _, err := ParallelMP(pe, Params{N: 2}); err == nil {
				return fmt.Errorf("expected error for N < PEs")
			}
			return nil
		})
	if err != nil || res.FirstErr() != nil {
		t.Fatalf("%v %v", err, res.FirstErr())
	}
}
