// Package gauss implements the paper's first workload: solving an
// N-dimensional simultaneous linear equation system with the Gauss-Seidel
// method, sequentially and in parallel over the DSE global memory.
//
// The parallel version partitions rows contiguously across PEs. Within a
// sweep each PE updates its own rows in order using its freshest local
// values (Gauss-Seidel within the block) and the previous sweep's values
// for other PEs' rows (Jacobi across blocks) — the standard synchronous
// block hybrid, which converges for the strictly diagonally dominant
// systems generated here. The shared x vector lives in global memory; each
// sweep a PE reads the full vector, updates its block locally, writes its
// block back, and joins a max-reduction on the update delta.
package gauss

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/gmem"
	"repro/internal/sim"
)

// Params describes one experiment instance.
type Params struct {
	N         int     // system dimension
	MaxSweeps int     // sweep cap (0 = 200)
	Tol       float64 // convergence threshold on max |Δx| (0 = 1e-8)
	Seed      uint64  // system generator seed

	// Omega is the successive-over-relaxation factor in (0, 2); 0 or 1 is
	// plain Gauss-Seidel (the paper's method). An extension: SOR can cut
	// the sweep count without changing the communication pattern.
	Omega float64
}

func (p Params) withDefaults() Params {
	if p.MaxSweeps == 0 {
		p.MaxSweeps = 200
	}
	if p.Tol == 0 {
		p.Tol = 1e-8
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Omega == 0 {
		p.Omega = 1
	}
	if p.Omega <= 0 || p.Omega >= 2 {
		panic(fmt.Sprintf("gauss: SOR factor %v outside (0,2)", p.Omega))
	}
	return p
}

// Result reports a solve.
type Result struct {
	X        []float64    // solution vector
	Sweeps   int          // sweeps performed
	Delta    float64      // final max |Δx|
	Residual float64      // max |Ax-b| of the returned solution
	Ops      float64      // counted floating-point operations
	Elapsed  sim.Duration // timed region (parallel runs; excludes setup)
}

// BuildSystem deterministically generates a strictly diagonally dominant
// dense system Ax = b.
func BuildSystem(p Params) (a [][]float64, b []float64) {
	p = p.withDefaults()
	n := p.N
	a = make([][]float64, n)
	b = make([]float64, n)
	rng := p.Seed
	next := func() float64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return float64(rng>>11) / float64(1<<53)
	}
	for i := 0; i < n; i++ {
		a[i] = make([]float64, n)
		sum := 0.0
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := 1.0 / float64(1+abs(i-j))
			a[i][j] = v
			sum += v
		}
		a[i][i] = 2*sum + 1 + next() // strong strict dominance
		b[i] = next() * float64(n)
	}
	return a, b
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// rowUpdate computes the (over-relaxed) Gauss-Seidel update for row i
// against x and returns the new value; omega=1 is plain Gauss-Seidel.
func rowUpdate(a [][]float64, b []float64, x []float64, i int, omega float64) float64 {
	s := b[i]
	row := a[i]
	for j, v := range row {
		if j != i {
			s -= v * x[j]
		}
	}
	gs := s / row[i]
	if omega == 1 {
		return gs
	}
	return (1-omega)*x[i] + omega*gs
}

// opsPerRow counts the floating-point work of one row update.
func opsPerRow(n int) float64 { return float64(2*n + 2) }

// residual computes max_i |(Ax)_i - b_i|.
func residual(a [][]float64, b, x []float64) float64 {
	worst := 0.0
	for i := range a {
		s := -b[i]
		for j, v := range a[i] {
			s += v * x[j]
		}
		if s < 0 {
			s = -s
		}
		if s > worst {
			worst = s
		}
	}
	return worst
}

// Sequential solves the system on one processor.
func Sequential(p Params) *Result {
	p = p.withDefaults()
	a, b := BuildSystem(p)
	x := make([]float64, p.N)
	res := &Result{}
	for sweep := 0; sweep < p.MaxSweeps; sweep++ {
		delta := 0.0
		for i := 0; i < p.N; i++ {
			old := x[i]
			x[i] = rowUpdate(a, b, x, i, p.Omega)
			if d := math.Abs(x[i] - old); d > delta {
				delta = d
			}
		}
		res.Ops += float64(p.N) * opsPerRow(p.N)
		res.Sweeps++
		res.Delta = delta
		if delta < p.Tol {
			break
		}
	}
	res.X = x
	res.Residual = residual(a, b, x)
	return res
}

// rowRange gives PE id's contiguous row block [lo, hi).
func rowRange(n, npe, id int) (lo, hi int) {
	per := n / npe
	rem := n % npe
	lo = id*per + min(id, rem)
	hi = lo + per
	if id < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Parallel solves the system as an SPMD program over the DSE API; every PE
// returns the same Result. The timed region excludes system generation and
// the initial zeroing of the shared vector.
func Parallel(pe core.Proc, p Params) (*Result, error) {
	p = p.withDefaults()
	if p.N < pe.N() {
		return nil, fmt.Errorf("gauss: N=%d smaller than %d PEs", p.N, pe.N())
	}
	a, b := BuildSystem(p) // replicated read-only data
	xAddr := pe.AllocBlocks(p.N)
	lo, hi := rowRange(p.N, pe.N(), pe.ID())

	// Setup: PE 0 zeroes the shared vector.
	if pe.ID() == 0 {
		pe.GMWriteBlockF(xAddr, make([]float64, p.N))
	}
	pe.Barrier()
	start := pe.Now()

	res := &Result{}
	for sweep := 0; sweep < p.MaxSweeps; sweep++ {
		// Fetch the current global vector (previous sweep's values). The
		// vector is block-cyclic over all homes, so this row fetch rides the
		// vectored read path: one OpReadV per remote home instead of one
		// OpRead per block-sized run.
		x := pe.GMReadBlockF(xAddr, p.N)
		// Update own rows in order, Gauss-Seidel within the block.
		delta := 0.0
		for i := lo; i < hi; i++ {
			old := x[i]
			x[i] = rowUpdate(a, b, x, i, p.Omega)
			if d := math.Abs(x[i] - old); d > delta {
				delta = d
			}
		}
		pe.Compute(float64(hi-lo) * opsPerRow(p.N))
		res.Ops += float64(hi-lo) * opsPerRow(p.N)
		// Separate the read and write phases so every PE updates against
		// exactly the previous sweep's vector (strictly synchronous — and
		// therefore deterministic on every transport), then publish the
		// block and agree on convergence.
		pe.Barrier()
		pe.GMWriteBlockF(xAddr+uint64(lo), x[lo:hi])
		res.Sweeps++
		res.Delta = pe.AllReduceMax(delta)
		if res.Delta < p.Tol {
			break
		}
	}
	res.Elapsed = pe.Now() - start
	res.X = pe.GMReadBlockF(xAddr, p.N)
	res.Residual = residual(a, b, res.X)
	return res, nil
}

// ParallelFine is the fine-grained variant of Parallel behind the
// consistency-tier ablation (DESIGN.md §14): the same numerics, but the
// shared vector is allocated under the given consistency mode, read word by
// word, and each updated row is published with a scalar write — the
// textbook access pattern the weaker tiers exist for. Under release the
// write-combining buffer coalesces the per-row publishes into one flush per
// home per sweep; under lease the per-word reads collapse into one grant
// per block per sweep; strong pays one round trip per remote word both
// ways. The sweep count is fixed (no convergence reduction) so the message
// count is a closed-form function of the mode, and the double barrier keeps
// read and write epochs disjoint: every mode computes bit-identical
// iterates, because release writes flush at the second barrier's entry —
// before any PE starts the next read epoch — and lease caches drop at each
// barrier crossing.
func ParallelFine(pe core.Proc, p Params, mode gmem.Mode, sweeps int) (*Result, error) {
	p = p.withDefaults()
	if p.N < pe.N() {
		return nil, fmt.Errorf("gauss: N=%d smaller than %d PEs", p.N, pe.N())
	}
	a, b := BuildSystem(p)
	xAddr := pe.AllocBlocksMode(p.N, mode)
	lo, hi := rowRange(p.N, pe.N(), pe.ID())
	if pe.ID() == 0 {
		for i := 0; i < p.N; i++ {
			pe.GMWriteF(xAddr+uint64(i), 0)
		}
	}
	pe.Barrier()
	start := pe.Now()

	res := &Result{}
	x := make([]float64, p.N)
	for sweep := 0; sweep < sweeps; sweep++ {
		for i := 0; i < p.N; i++ {
			x[i] = pe.GMReadF(xAddr + uint64(i))
		}
		delta := 0.0
		for i := lo; i < hi; i++ {
			old := x[i]
			x[i] = rowUpdate(a, b, x, i, p.Omega)
			if d := math.Abs(x[i] - old); d > delta {
				delta = d
			}
		}
		pe.Compute(float64(hi-lo) * opsPerRow(p.N))
		res.Ops += float64(hi-lo) * opsPerRow(p.N)
		pe.Barrier() // end of read epoch
		for i := lo; i < hi; i++ {
			pe.GMWriteF(xAddr+uint64(i), x[i])
		}
		pe.Barrier() // publication fence: release flushes, leases drop
		res.Sweeps++
		res.Delta = delta
	}
	res.Elapsed = pe.Now() - start
	res.X = make([]float64, p.N)
	for i := 0; i < p.N; i++ {
		res.X[i] = pe.GMReadF(xAddr + uint64(i))
	}
	res.Residual = residual(a, b, res.X)
	return res, nil
}
