package gauss

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/mp"
)

// ParallelMP solves the same system with the same block-hybrid sweep
// structure as Parallel, but using the message-passing library instead of
// global memory: each rank keeps its row block privately, and blocks are
// exchanged through a gather-to-root plus broadcast every sweep — the
// PVM/MPI programming style the paper cites as the portable alternative to
// DSE's shared memory. Numerical results are bit-identical to Parallel
// (the per-sweep arithmetic is the same); only the communication differs.
func ParallelMP(pe core.Proc, p Params) (*Result, error) {
	p = p.withDefaults()
	if p.N < pe.N() {
		return nil, fmt.Errorf("gauss: N=%d smaller than %d PEs", p.N, pe.N())
	}
	c := mp.New(pe)
	a, b := BuildSystem(p)
	lo, hi := rowRange(p.N, pe.N(), pe.ID())

	const blockTag = 100
	x := make([]float64, p.N)
	start := pe.Now()
	res := &Result{}
	for sweep := 0; sweep < p.MaxSweeps; sweep++ {
		delta := 0.0
		for i := lo; i < hi; i++ {
			old := x[i]
			x[i] = rowUpdate(a, b, x, i, p.Omega)
			if d := math.Abs(x[i] - old); d > delta {
				delta = d
			}
		}
		pe.Compute(float64(hi-lo) * opsPerRow(p.N))
		res.Ops += float64(hi-lo) * opsPerRow(p.N)

		// Exchange blocks: gather to rank 0, broadcast the full vector.
		// Cross-sweep messages cannot mix: rank 0 consumes exactly N-1
		// blocks before broadcasting, and no rank starts the next sweep
		// before receiving that broadcast.
		if c.Rank() == 0 {
			for i := 1; i < c.Size(); i++ {
				src, vals := c.RecvF(blockTag)
				sLo, sHi := rowRange(p.N, pe.N(), src)
				if len(vals) != sHi-sLo {
					return nil, fmt.Errorf("gauss: rank %d sent %d rows, want %d", src, len(vals), sHi-sLo)
				}
				copy(x[sLo:sHi], vals)
			}
		} else {
			c.SendF(0, blockTag, x[lo:hi])
		}
		full := c.Bcast(0, encodeVector(x))
		decodeVectorInto(full, x)

		res.Sweeps++
		res.Delta = c.AllReduce(delta, math.Max)
		if res.Delta < p.Tol {
			break
		}
	}
	res.Elapsed = pe.Now() - start
	res.X = append([]float64(nil), x...)
	res.Residual = residual(a, b, res.X)
	return res, nil
}

// encodeVector and decodeVectorInto move float64 vectors through byte
// payloads (little-endian words).
func encodeVector(x []float64) []byte {
	buf := make([]byte, 8*len(x))
	for i, v := range x {
		bits := math.Float64bits(v)
		for k := 0; k < 8; k++ {
			buf[i*8+k] = byte(bits >> uint(8*k))
		}
	}
	return buf
}

func decodeVectorInto(buf []byte, x []float64) {
	if len(buf) != 8*len(x) {
		panic(fmt.Sprintf("gauss: vector payload %d bytes, want %d", len(buf), 8*len(x)))
	}
	for i := range x {
		var bits uint64
		for k := 0; k < 8; k++ {
			bits |= uint64(buf[i*8+k]) << uint(8*k)
		}
		x[i] = math.Float64frombits(bits)
	}
}
