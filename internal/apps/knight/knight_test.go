package knight

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
)

func TestValidation(t *testing.T) {
	bad := []Params{
		{BoardN: 2, Jobs: 1},
		{BoardN: 9, Jobs: 1},
		{BoardN: 5, Jobs: 0},
		{BoardN: 5, Jobs: 1, StartX: 5},
	}
	for _, p := range bad {
		if _, err := Sequential(p); err == nil {
			t.Fatalf("params %+v accepted", p)
		}
	}
}

func TestKnown5x5CornerTourCount(t *testing.T) {
	res, err := Sequential(Params{BoardN: 5, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The number of open knight's tours on 5x5 starting from a corner is
	// a classical result: 304.
	if res.Tours != 304 {
		t.Fatalf("5x5 corner tours = %d, want 304", res.Tours)
	}
	if res.Nodes <= res.Tours {
		t.Fatal("node count implausible")
	}
}

func TestNoToursFromMinorityColor5x5(t *testing.T) {
	// On 5x5 open tours exist only from majority-colour squares; (0,1) is
	// minority colour.
	res, err := Sequential(Params{BoardN: 5, Jobs: 1, StartX: 0, StartY: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tours != 0 {
		t.Fatalf("tours from minority colour = %d, want 0", res.Tours)
	}
}

func TestCountInvariantUnderJobSplit(t *testing.T) {
	base, err := Sequential(Params{BoardN: 5, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{2, 8, 16, 64, 256} {
		res, err := Sequential(Params{BoardN: 5, Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		if res.Tours != base.Tours {
			t.Fatalf("jobs=%d: tours %d, want %d", jobs, res.Tours, base.Tours)
		}
		if res.Jobs < jobs {
			t.Fatalf("jobs=%d: only %d prefixes enumerated", jobs, res.Jobs)
		}
	}
}

func TestEnumPrefixesDeterministic(t *testing.T) {
	p := Params{BoardN: 5, Jobs: 16}
	a, b := EnumPrefixes(p, 16), EnumPrefixes(p, 16)
	if len(a) != len(b) {
		t.Fatal("prefix enumeration not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("prefix enumeration not deterministic")
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	p := Params{BoardN: 5, Jobs: 16}
	seq, err := Sequential(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, npe := range []int{1, 3, 6} {
		npe := npe
		t.Run(fmt.Sprintf("p%d", npe), func(t *testing.T) {
			results := make([]*Result, npe)
			res, err := core.Run(core.Config{NumPE: npe, Transport: core.TransportInproc},
				func(pe *core.PE) error {
					r, err := Parallel(pe, p)
					if err != nil {
						return err
					}
					results[pe.ID()] = r
					return nil
				})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if err := res.FirstErr(); err != nil {
				t.Fatal(err)
			}
			jobs := 0
			for i, r := range results {
				if r.Tours != seq.Tours || r.Nodes != seq.Nodes {
					t.Fatalf("PE %d: %d tours / %d nodes, want %d / %d",
						i, r.Tours, r.Nodes, seq.Tours, seq.Nodes)
				}
				jobs += r.Jobs
			}
			if jobs != seq.Jobs {
				t.Fatalf("jobs %d, want %d", jobs, seq.Jobs)
			}
		})
	}
}

func TestSmallBoardsHaveNoTours(t *testing.T) {
	for _, n := range []int{3, 4} {
		res, err := Sequential(Params{BoardN: n, Jobs: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Tours != 0 {
			t.Fatalf("%dx%d has %d tours, want 0", n, n, res.Tours)
		}
	}
}

func TestParallelOnSimulatedCluster(t *testing.T) {
	res, err := core.Run(core.Config{NumPE: 4, Platform: platform.SparcSunOS, Seed: 1},
		func(pe *core.PE) error {
			r, err := Parallel(pe, Params{BoardN: 5, Jobs: 16})
			if err != nil {
				return err
			}
			if r.Tours != 304 {
				return fmt.Errorf("tours = %d", r.Tours)
			}
			return nil
		})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := res.FirstErr(); err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestFindTourWarnsdorff(t *testing.T) {
	for _, n := range []int{5, 6, 7, 8} {
		path, ok, err := FindTour(Params{BoardN: n, Jobs: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("%dx%d: no tour found from the corner", n, n)
		}
		if err := ValidateTour(path, n); err != nil {
			t.Fatalf("%dx%d: %v", n, n, err)
		}
	}
}

func TestFindTourImpossibleStart(t *testing.T) {
	// 5x5 minority-colour start has no tour.
	_, ok, err := FindTour(Params{BoardN: 5, Jobs: 1, StartX: 0, StartY: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("found a tour that cannot exist")
	}
}

func TestValidateTourRejectsBadPaths(t *testing.T) {
	if err := ValidateTour([]int{0, 1}, 5); err == nil {
		t.Fatal("short path accepted")
	}
	good, ok, _ := FindTour(Params{BoardN: 5, Jobs: 1})
	if !ok {
		t.Fatal("no baseline tour")
	}
	bad := append([]int(nil), good...)
	bad[3], bad[4] = bad[4], bad[3] // breaks the knight-move chain
	if err := ValidateTour(bad, 5); err == nil {
		t.Fatal("corrupted path accepted")
	}
	dup := append([]int(nil), good...)
	dup[10] = dup[0]
	if err := ValidateTour(dup, 5); err == nil {
		t.Fatal("duplicate square accepted")
	}
}
