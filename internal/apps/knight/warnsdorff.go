package knight

import "fmt"

// FindTour searches for a single complete knight's tour using Warnsdorff's
// heuristic (always move to the successor with the fewest onward moves,
// ties broken by lowest square) with backtracking as a safety net. Unlike
// the exhaustive count the paper measures, this is the classic fast way to
// *find* one tour — an extension useful for larger boards, where exhaustive
// enumeration is hopeless. It returns the visit order, or ok=false when no
// tour exists from the start square.
func FindTour(p Params) (path []int, ok bool, err error) {
	if err := p.validate(); err != nil {
		return nil, false, err
	}
	n := p.BoardN
	target := n * n
	start := startPrefix(p)
	path = make([]int, 1, target)
	path[0] = start.Cur

	// degree counts the onward moves from sq given the visited set.
	degree := func(visited uint64, sq int) int {
		return len(successors(Prefix{Visited: visited, Cur: sq}, n))
	}

	var rec func(visited uint64, cur, depth int) bool
	rec = func(visited uint64, cur, depth int) bool {
		if depth == target {
			return true
		}
		succ := successors(Prefix{Visited: visited, Cur: cur}, n)
		// Order successors by Warnsdorff degree (insertion sort: ≤8 moves).
		type cand struct{ sq, deg int }
		cands := make([]cand, 0, len(succ))
		for _, sq := range succ {
			cands = append(cands, cand{sq, degree(visited|1<<uint(sq), sq)})
		}
		for i := 1; i < len(cands); i++ {
			for j := i; j > 0 && (cands[j].deg < cands[j-1].deg ||
				(cands[j].deg == cands[j-1].deg && cands[j].sq < cands[j-1].sq)); j-- {
				cands[j], cands[j-1] = cands[j-1], cands[j]
			}
		}
		for _, c := range cands {
			path = append(path, c.sq)
			if rec(visited|1<<uint(c.sq), c.sq, depth+1) {
				return true
			}
			path = path[:len(path)-1]
		}
		return false
	}
	if !rec(start.Visited, start.Cur, 1) {
		return nil, false, nil
	}
	return path, true, nil
}

// ValidateTour checks that path is a complete legal knight's tour on the
// n×n board.
func ValidateTour(path []int, n int) error {
	if len(path) != n*n {
		return fmt.Errorf("knight: tour has %d squares, want %d", len(path), n*n)
	}
	seen := make(map[int]bool, len(path))
	for i, sq := range path {
		if sq < 0 || sq >= n*n {
			return fmt.Errorf("knight: square %d off the board", sq)
		}
		if seen[sq] {
			return fmt.Errorf("knight: square %d visited twice", sq)
		}
		seen[sq] = true
		if i == 0 {
			continue
		}
		dx, dy := abs(sq%n-path[i-1]%n), abs(sq/n-path[i-1]/n)
		if !(dx == 1 && dy == 2 || dx == 2 && dy == 1) {
			return fmt.Errorf("knight: step %d->%d is not a knight move", path[i-1], sq)
		}
	}
	return nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
