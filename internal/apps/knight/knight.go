// Package knight implements the paper's fourth workload: the Knight's Tour
// problem — "find the route which a knight passes all [squares] on the
// surface of an N×N chess board only once" — as an exhaustive backtracking
// count of complete tours.
//
// The parallel version studies computation granularity exactly as the
// paper does: the search tree is split into a configurable number of jobs
// (prefix paths enumerated breadth-first), which PEs claim from a global
// counter. Few jobs mean coarse grains and poor balance; many jobs mean
// fine grains and high communication frequency — the tension behind the
// paper's Figures 19-21.
package knight

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Params describes one experiment instance.
type Params struct {
	BoardN int // board edge (paper-scale: 5)
	Jobs   int // minimum number of jobs to split the search into (1 = sequential shape)
	StartX int // starting square (0,0 = corner, the classic setting)
	StartY int
}

func (p Params) validate() error {
	if p.BoardN < 3 || p.BoardN > 8 {
		return fmt.Errorf("knight: board %d outside [3,8]", p.BoardN)
	}
	if p.StartX < 0 || p.StartX >= p.BoardN || p.StartY < 0 || p.StartY >= p.BoardN {
		return fmt.Errorf("knight: start (%d,%d) off the board", p.StartX, p.StartY)
	}
	if p.Jobs < 1 {
		return fmt.Errorf("knight: jobs %d < 1", p.Jobs)
	}
	return nil
}

// Result reports one enumeration.
type Result struct {
	Tours   int64        // complete open tours found
	Nodes   int64        // search-tree nodes visited
	Jobs    int          // jobs processed (per PE for Parallel, total for Sequential)
	Ops     float64      // counted operations
	Elapsed sim.Duration // timed region (parallel runs)
}

// opsPerNode is the counted cost of one search-tree node (move generation
// and bounds checks on period hardware).
const opsPerNode = 25

var offsets = [8][2]int{
	{1, 2}, {2, 1}, {2, -1}, {1, -2},
	{-1, -2}, {-2, -1}, {-2, 1}, {-1, 2},
}

// Prefix is a partial path: the visited-square bitmask, the current square
// and the path length so far.
type Prefix struct {
	Visited uint64
	Cur     int // square index y*N+x
	Depth   int
}

// startPrefix is the root of the search.
func startPrefix(p Params) Prefix {
	sq := p.StartY*p.BoardN + p.StartX
	return Prefix{Visited: 1 << uint(sq), Cur: sq, Depth: 1}
}

// successors returns the squares reachable from pre on an n×n board.
func successors(pre Prefix, n int) []int {
	x, y := pre.Cur%n, pre.Cur/n
	out := make([]int, 0, 8)
	for _, o := range offsets {
		nx, ny := x+o[0], y+o[1]
		if nx < 0 || nx >= n || ny < 0 || ny >= n {
			continue
		}
		sq := ny*n + nx
		if pre.Visited&(1<<uint(sq)) != 0 {
			continue
		}
		out = append(out, sq)
	}
	return out
}

// EnumPrefixes splits the search into at least minJobs prefix jobs by
// breadth-first expansion from the start square. It is deterministic, so
// every PE computes the identical job list locally. Expansion stops early
// if the frontier cannot grow (tiny boards).
func EnumPrefixes(p Params, minJobs int) []Prefix {
	frontier := []Prefix{startPrefix(p)}
	for len(frontier) < minJobs {
		next := make([]Prefix, 0, len(frontier)*2)
		grew := false
		for _, pre := range frontier {
			succ := successors(pre, p.BoardN)
			if len(succ) == 0 {
				next = append(next, pre) // dead end or complete: keep as its own job
				continue
			}
			grew = true
			for _, sq := range succ {
				next = append(next, Prefix{
					Visited: pre.Visited | 1<<uint(sq),
					Cur:     sq,
					Depth:   pre.Depth + 1,
				})
			}
		}
		frontier = next
		if !grew {
			break
		}
	}
	return frontier
}

// extend runs exhaustive backtracking from a prefix, counting complete
// tours and visited nodes.
func extend(pre Prefix, n, target int) (tours, nodes int64) {
	var rec func(visited uint64, cur, depth int)
	rec = func(visited uint64, cur, depth int) {
		nodes++
		if depth == target {
			tours++
			return
		}
		x, y := cur%n, cur/n
		for _, o := range offsets {
			nx, ny := x+o[0], y+o[1]
			if nx < 0 || nx >= n || ny < 0 || ny >= n {
				continue
			}
			sq := ny*n + nx
			bit := uint64(1) << uint(sq)
			if visited&bit != 0 {
				continue
			}
			rec(visited|bit, sq, depth+1)
		}
	}
	rec(pre.Visited, pre.Cur, pre.Depth)
	return tours, nodes
}

// Sequential counts tours on one processor, splitting into the same jobs
// as the parallel version so node counts match exactly.
func Sequential(p Params) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	prefixes := EnumPrefixes(p, p.Jobs)
	target := p.BoardN * p.BoardN
	res := &Result{Jobs: len(prefixes)}
	for _, pre := range prefixes {
		tours, nodes := extend(pre, p.BoardN, target)
		res.Tours += tours
		res.Nodes += nodes
	}
	res.Ops = float64(res.Nodes) * opsPerNode
	return res, nil
}

// Parallel counts tours as an SPMD program: PEs claim prefix jobs from a
// global counter and accumulate tours/nodes into global cells. Every PE
// returns the same Tours/Nodes (Jobs is per-PE).
func Parallel(pe core.Proc, p Params) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	prefixes := EnumPrefixes(p, p.Jobs) // deterministic, replicated
	target := p.BoardN * p.BoardN
	counter := pe.AllocBlocks(1)
	toursAddr := pe.AllocBlocks(1)
	nodesAddr := pe.AllocBlocks(1)
	pe.Barrier()
	start := pe.Now()

	res := &Result{}
	for {
		j := pe.FetchAdd(counter, 1)
		if j >= int64(len(prefixes)) {
			break
		}
		tours, nodes := extend(prefixes[j], p.BoardN, target)
		pe.Compute(float64(nodes) * opsPerNode)
		pe.FetchAdd(toursAddr, tours)
		pe.FetchAdd(nodesAddr, nodes)
		res.Jobs++
	}
	pe.Barrier()
	res.Elapsed = pe.Now() - start
	res.Tours = pe.GMRead(toursAddr)
	res.Nodes = pe.GMRead(nodesAddr)
	res.Ops = float64(res.Nodes) * opsPerNode
	pe.Barrier()
	return res, nil
}
