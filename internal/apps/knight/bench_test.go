package knight

import "testing"

// BenchmarkExhaustive5x5 measures the raw backtracking rate.
func BenchmarkExhaustive5x5(b *testing.B) {
	p := Params{BoardN: 5, Jobs: 1}
	var nodes int64
	for i := 0; i < b.N; i++ {
		res, err := Sequential(p)
		if err != nil {
			b.Fatal(err)
		}
		nodes += res.Nodes
	}
	b.ReportMetric(float64(nodes)/float64(b.N), "nodes/op")
}

// BenchmarkEnumPrefixes measures job splitting.
func BenchmarkEnumPrefixes(b *testing.B) {
	p := Params{BoardN: 5, Jobs: 64}
	for i := 0; i < b.N; i++ {
		if len(EnumPrefixes(p, 64)) < 64 {
			b.Fatal("too few prefixes")
		}
	}
}
