// Package procmgmt implements the DSE parallel process management module:
// a cluster-global process table with single-system-image semantics. Every
// DSE process receives a global PID regardless of which kernel and machine
// hosts it, and any kernel can enumerate the whole table — the user sees
// one machine (the SSI goal of the paper), not a collection of nodes.
//
// The table itself lives at kernel 0; other kernels interact with it
// through OpProcRegister/OpProcExit/OpProcList messages. This package holds
// the table data structure and its wire encoding; the message plumbing is
// in internal/core.
package procmgmt

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"repro/internal/sim"
)

// State is a process's lifecycle state.
type State uint8

// Process states.
const (
	StateRunning State = iota + 1
	StateExited
)

func (s State) String() string {
	switch s {
	case StateRunning:
		return "running"
	case StateExited:
		return "exited"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Entry is one row of the global process table.
type Entry struct {
	GPID     int64  // cluster-global process id
	Kernel   int32  // hosting DSE kernel
	Host     string // hosting physical machine
	State    State
	Start    sim.Time
	End      sim.Time
	ExitCode int64
}

// Table is the global process table. Safe for concurrent use.
type Table struct {
	mu      sync.Mutex
	entries map[int64]*Entry
	next    int64
}

// NewTable returns an empty table; GPIDs start at 1.
func NewTable() *Table {
	return &Table{entries: make(map[int64]*Entry)}
}

// Register adds a running process hosted by kernel on host and returns its
// new global PID.
func (t *Table) Register(kernel int32, host string, now sim.Time) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next++
	gpid := t.next
	t.entries[gpid] = &Entry{
		GPID: gpid, Kernel: kernel, Host: host,
		State: StateRunning, Start: now,
	}
	return gpid
}

// Exit marks gpid exited with the given code.
func (t *Table) Exit(gpid, code int64, now sim.Time) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[gpid]
	if !ok {
		return fmt.Errorf("procmgmt: unknown gpid %d", gpid)
	}
	if e.State == StateExited {
		return fmt.Errorf("procmgmt: gpid %d already exited", gpid)
	}
	e.State = StateExited
	e.End = now
	e.ExitCode = code
	return nil
}

// Snapshot returns all entries ordered by GPID.
func (t *Table) Snapshot() []Entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Entry, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].GPID < out[j].GPID })
	return out
}

// Running counts processes in StateRunning.
func (t *Table) Running() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, e := range t.entries {
		if e.State == StateRunning {
			n++
		}
	}
	return n
}

// LoadByHost returns running-process counts per machine: the load view the
// SSI layer uses for placement decisions.
func (t *Table) LoadByHost() map[string]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	load := make(map[string]int)
	for _, e := range t.entries {
		if e.State == StateRunning {
			load[e.Host]++
		}
	}
	return load
}

// EncodeSnapshot serialises entries for an OpProcListResp payload.
func EncodeSnapshot(entries []Entry) []byte {
	var buf []byte
	var b8 [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(b8[:], v)
		buf = append(buf, b8[:]...)
	}
	put(uint64(len(entries)))
	for _, e := range entries {
		put(uint64(e.GPID))
		put(uint64(int64(e.Kernel)))
		put(uint64(e.State))
		put(uint64(e.Start))
		put(uint64(e.End))
		put(uint64(e.ExitCode))
		put(uint64(len(e.Host)))
		buf = append(buf, e.Host...)
	}
	return buf
}

// DecodeSnapshot parses an EncodeSnapshot payload.
func DecodeSnapshot(buf []byte) ([]Entry, error) {
	off := 0
	get := func() (uint64, error) {
		if off+8 > len(buf) {
			return 0, fmt.Errorf("procmgmt: truncated snapshot at byte %d", off)
		}
		v := binary.LittleEndian.Uint64(buf[off:])
		off += 8
		return v, nil
	}
	n, err := get()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(buf)) { // cheap sanity bound: each entry is >= 56 bytes
		return nil, fmt.Errorf("procmgmt: implausible entry count %d", n)
	}
	out := make([]Entry, 0, n)
	for i := uint64(0); i < n; i++ {
		var e Entry
		var v uint64
		if v, err = get(); err != nil {
			return nil, err
		}
		e.GPID = int64(v)
		if v, err = get(); err != nil {
			return nil, err
		}
		e.Kernel = int32(int64(v))
		if v, err = get(); err != nil {
			return nil, err
		}
		e.State = State(v)
		if v, err = get(); err != nil {
			return nil, err
		}
		e.Start = sim.Time(v)
		if v, err = get(); err != nil {
			return nil, err
		}
		e.End = sim.Time(v)
		if v, err = get(); err != nil {
			return nil, err
		}
		e.ExitCode = int64(v)
		if v, err = get(); err != nil {
			return nil, err
		}
		if off+int(v) > len(buf) {
			return nil, fmt.Errorf("procmgmt: truncated hostname")
		}
		e.Host = string(buf[off : off+int(v)])
		off += int(v)
		out = append(out, e)
	}
	return out, nil
}
