package procmgmt

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestRegisterAssignsSequentialGPIDs(t *testing.T) {
	tb := NewTable()
	for i := int64(1); i <= 5; i++ {
		if gpid := tb.Register(int32(i), "node00", 0); gpid != i {
			t.Fatalf("gpid = %d, want %d", gpid, i)
		}
	}
	if tb.Running() != 5 {
		t.Fatalf("running = %d, want 5", tb.Running())
	}
}

func TestExitLifecycle(t *testing.T) {
	tb := NewTable()
	g := tb.Register(0, "node00", 100)
	if err := tb.Exit(g, 7, 200); err != nil {
		t.Fatalf("Exit: %v", err)
	}
	snap := tb.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot length %d", len(snap))
	}
	e := snap[0]
	if e.State != StateExited || e.ExitCode != 7 || e.Start != 100 || e.End != 200 {
		t.Fatalf("entry = %+v", e)
	}
	if err := tb.Exit(g, 0, 300); err == nil {
		t.Fatal("double exit should fail")
	}
	if err := tb.Exit(999, 0, 300); err == nil {
		t.Fatal("unknown gpid should fail")
	}
}

func TestSnapshotOrderedByGPID(t *testing.T) {
	tb := NewTable()
	for i := 0; i < 10; i++ {
		tb.Register(int32(i), "h", sim.Time(i))
	}
	snap := tb.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i].GPID <= snap[i-1].GPID {
			t.Fatal("snapshot not ordered")
		}
	}
}

func TestLoadByHost(t *testing.T) {
	tb := NewTable()
	tb.Register(0, "node00", 0)
	tb.Register(1, "node00", 0)
	g := tb.Register(2, "node01", 0)
	tb.Exit(g, 0, 10)
	load := tb.LoadByHost()
	if load["node00"] != 2 {
		t.Fatalf("node00 load = %d, want 2", load["node00"])
	}
	if load["node01"] != 0 {
		t.Fatalf("node01 load = %d, want 0 (process exited)", load["node01"])
	}
}

func TestSnapshotEncodingRoundTrip(t *testing.T) {
	tb := NewTable()
	tb.Register(3, "node03", 123)
	g := tb.Register(4, "node04", 456)
	tb.Exit(g, -2, 789)
	snap := tb.Snapshot()
	got, err := DecodeSnapshot(EncodeSnapshot(snap))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got) != len(snap) {
		t.Fatalf("length %d vs %d", len(got), len(snap))
	}
	for i := range snap {
		if got[i] != snap[i] {
			t.Fatalf("entry %d: %+v vs %+v", i, got[i], snap[i])
		}
	}
}

// Property: encode/decode round-trips arbitrary tables.
func TestEncodingRoundTripProperty(t *testing.T) {
	f := func(kernels []int32, hostSeed uint8, exits []bool) bool {
		tb := NewTable()
		gpids := make([]int64, len(kernels))
		for i, k := range kernels {
			host := string(rune('a' + (int(hostSeed)+i)%26))
			gpids[i] = tb.Register(k, host, sim.Time(i))
		}
		for i, ex := range exits {
			if ex && i < len(gpids) {
				tb.Exit(gpids[i], int64(i), sim.Time(1000+i))
			}
		}
		snap := tb.Snapshot()
		got, err := DecodeSnapshot(EncodeSnapshot(snap))
		if err != nil || len(got) != len(snap) {
			return false
		}
		for i := range snap {
			if got[i] != snap[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	tb := NewTable()
	tb.Register(0, "hostname", 0)
	enc := EncodeSnapshot(tb.Snapshot())
	for cut := 1; cut < len(enc); cut += 7 {
		if _, err := DecodeSnapshot(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestDecodeRejectsAbsurdCount(t *testing.T) {
	enc := EncodeSnapshot(nil)
	enc[0] = 0xff
	enc[7] = 0xff
	if _, err := DecodeSnapshot(enc); err == nil {
		t.Fatal("absurd count accepted")
	}
}
