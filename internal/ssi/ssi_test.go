package ssi

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/transport/simnet"
	"repro/internal/transport/tcpnet"
)

// run executes body on an inproc cluster and fails the test on any error.
func run(t *testing.T, n int, body core.Program) {
	t.Helper()
	res, err := core.Run(core.Config{NumPE: n, Transport: core.TransportInproc}, body)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := res.FirstErr(); err != nil {
		t.Fatal(err)
	}
}

func TestViewBasics(t *testing.T) {
	run(t, 4, func(pe *core.PE) error {
		v := NewView(pe)
		if v.NumCPU() != 4 {
			return fmt.Errorf("NumCPU = %d", v.NumCPU())
		}
		if !strings.Contains(v.Uname(), "4 processors") {
			return fmt.Errorf("Uname = %q", v.Uname())
		}
		pe.Barrier()
		if got := len(v.Processes()); got != 4 {
			return fmt.Errorf("process table has %d entries", got)
		}
		pe.Barrier()
		return nil
	})
}

func TestLoadByHostSeesAllProcesses(t *testing.T) {
	run(t, 3, func(pe *core.PE) error {
		pe.Barrier()
		v := NewView(pe)
		total := 0
		for _, l := range v.LoadByHost() {
			total += l
		}
		if total != 3 {
			return fmt.Errorf("total load %d, want 3", total)
		}
		pe.Barrier()
		return nil
	})
}

func TestLeastLoadedKernelIsDeterministic(t *testing.T) {
	picks := make([]int, 5)
	run(t, 5, func(pe *core.PE) error {
		pe.Barrier()
		picks[pe.ID()] = NewView(pe).LeastLoadedKernel()
		pe.Barrier()
		return nil
	})
	for i := 1; i < 5; i++ {
		if picks[i] != picks[0] {
			t.Fatalf("PEs disagree on placement: %v", picks)
		}
	}
}

func TestLeastLoadedKernelOnVirtualCluster(t *testing.T) {
	// On the simulated transport 7 PEs over 6 machines double up machine
	// 0, so the scheduler must avoid kernels 0 and 6.
	res, err := core.Run(core.Config{NumPE: 7, Platform: platform.SparcSunOS, Seed: 1},
		func(pe *core.PE) error {
			pe.Barrier()
			pick := NewView(pe).LeastLoadedKernel()
			if pick == 0 || pick == 6 {
				return fmt.Errorf("scheduler picked doubled machine (kernel %d)", pick)
			}
			pe.Barrier()
			return nil
		})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := res.FirstErr(); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryPublishLookup(t *testing.T) {
	run(t, 4, func(pe *core.PE) error {
		reg := NewRegistry(pe, 16)
		if pe.ID() == 0 {
			if err := reg.Publish("matrix", 12345); err != nil {
				return err
			}
			if err := reg.Publish("vector", 67890); err != nil {
				return err
			}
		}
		pe.Barrier()
		if v, ok := reg.Lookup("matrix"); !ok || v != 12345 {
			return fmt.Errorf("PE %d: matrix = %d,%v", pe.ID(), v, ok)
		}
		if v, ok := reg.Lookup("vector"); !ok || v != 67890 {
			return fmt.Errorf("PE %d: vector = %d,%v", pe.ID(), v, ok)
		}
		if _, ok := reg.Lookup("absent"); ok {
			return fmt.Errorf("PE %d: found absent name", pe.ID())
		}
		pe.Barrier()
		return nil
	})
}

func TestRegistryOverwrite(t *testing.T) {
	run(t, 2, func(pe *core.PE) error {
		reg := NewRegistry(pe, 8)
		if pe.ID() == 0 {
			reg.Publish("x", 1)
			reg.Publish("x", 2)
		}
		pe.Barrier()
		if v, ok := reg.Lookup("x"); !ok || v != 2 {
			return fmt.Errorf("x = %d,%v want 2", v, ok)
		}
		pe.Barrier()
		return nil
	})
}

func TestRegistryConcurrentPublishers(t *testing.T) {
	run(t, 4, func(pe *core.PE) error {
		reg := NewRegistry(pe, 32)
		name := fmt.Sprintf("pe-%d", pe.ID())
		if err := reg.Publish(name, int64(100+pe.ID())); err != nil {
			return err
		}
		pe.Barrier()
		for i := 0; i < 4; i++ {
			if v, ok := reg.Lookup(fmt.Sprintf("pe-%d", i)); !ok || v != int64(100+i) {
				return fmt.Errorf("pe-%d = %d,%v", i, v, ok)
			}
		}
		pe.Barrier()
		return nil
	})
}

func TestRegistryFull(t *testing.T) {
	run(t, 1, func(pe *core.PE) error {
		reg := NewRegistry(pe, 2)
		if err := reg.Publish("a", 1); err != nil {
			return err
		}
		if err := reg.Publish("b", 2); err != nil {
			return err
		}
		if err := reg.Publish("c", 3); err == nil {
			return fmt.Errorf("expected registry-full error")
		}
		return nil
	})
}

func TestProbePeersAllAlive(t *testing.T) {
	res, err := core.Run(core.Config{NumPE: 3, Platform: platform.SparcSunOS, Seed: 1},
		func(pe *core.PE) error {
			statuses := NewView(pe).ProbePeers()
			if len(statuses) != 2 {
				return fmt.Errorf("probed %d peers", len(statuses))
			}
			for _, st := range statuses {
				if !st.Alive {
					return fmt.Errorf("peer %d reported dead", st.Kernel)
				}
				if st.RTT <= 0 {
					return fmt.Errorf("peer %d has zero RTT", st.Kernel)
				}
			}
			pe.Barrier()
			return nil
		})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := res.FirstErr(); err != nil {
		t.Fatal(err)
	}
}

func TestProbePeersDetectsDeadNode(t *testing.T) {
	net, err := tcpnet.NewLocal(3)
	if err != nil {
		t.Fatalf("NewLocal: %v", err)
	}
	defer net.Stop()
	net.TCPNode(2).Kill()

	// Nodes 0 and 1 run; node 2 is dead. Node 0 probes the cluster. The
	// final shutdown barrier cannot complete without node 2, so both
	// survivors are allowed (only) that error.
	var probeErr error
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := core.RunOn(core.Config{RequestTimeout: sim.Second}, net.Node(i),
				func(pe *core.PE) error {
					if pe.ID() != 0 {
						return nil
					}
					alive := map[int]bool{}
					probeStart := time.Now()
					for _, st := range NewView(pe).ProbePeers() {
						alive[st.Kernel] = st.Alive
					}
					probeTook := time.Since(probeStart)
					if alive[2] {
						probeErr = fmt.Errorf("dead kernel 2 reported alive")
					} else if !alive[1] {
						probeErr = fmt.Errorf("healthy kernel 1 reported dead")
					} else if probeTook >= 900*time.Millisecond {
						// The transport noticed the broken connection, so the
						// dead peer must fail via the detector's fast path,
						// not by waiting out the full 1s request timeout.
						probeErr = fmt.Errorf("probe took %v, want fast peer-down detection", probeTook)
					}
					return nil
				})
			if err != nil {
				probeErr = err
				return
			}
			if perr := res.Errs[0]; perr != nil && !strings.Contains(perr.Error(), "shutdown barrier") {
				probeErr = perr
			}
		}()
	}
	wg.Wait()
	if probeErr != nil {
		t.Fatal(probeErr)
	}
}

func TestHealthAggregatesProbeRounds(t *testing.T) {
	run(t, 4, func(pe *core.PE) error {
		v := NewView(pe)
		rep := v.Health(3)
		if rep.Rounds != 3 {
			return fmt.Errorf("rounds = %d", rep.Rounds)
		}
		if !rep.AllAlive() {
			return fmt.Errorf("healthy cluster reported dead peers: %+v", rep.Peers)
		}
		if len(rep.Peers) != 3 {
			return fmt.Errorf("%d peers, want 3", len(rep.Peers))
		}
		if want := uint64(3 * 3); rep.ProbeRTT.Count != want {
			return fmt.Errorf("probe histogram has %d samples, want %d", rep.ProbeRTT.Count, want)
		}
		if rep.Failures != 0 {
			return fmt.Errorf("failures = %d", rep.Failures)
		}
		pe.Barrier()
		return nil
	})
}

func TestHealthClampsRounds(t *testing.T) {
	run(t, 2, func(pe *core.PE) error {
		rep := NewView(pe).Health(0)
		if rep.Rounds != 1 || rep.ProbeRTT.Count != 1 {
			return fmt.Errorf("rounds=%d samples=%d", rep.Rounds, rep.ProbeRTT.Count)
		}
		pe.Barrier()
		return nil
	})
}

// TestHealthReportsRecoveredGeneration kills a PE after a checkpoint and
// verifies the restarted incarnation's health sweep reports the new view
// generation instead of a dead peer forever: every peer answers again and
// renders as recovered(gen=1).
func TestHealthReportsRecoveredGeneration(t *testing.T) {
	store, err := ckpt.OpenDir(t.TempDir())
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	const killAt = sim.Time(1 * sim.Second)
	cfg := core.Config{
		NumPE:          3,
		Platform:       platform.SparcSunOS,
		RequestTimeout: 50 * sim.Millisecond,
		RequestRetries: 2,
		Kills:          []simnet.Kill{{Node: 2, At: sim.Duration(killAt)}},
		Ckpt:           &core.CheckpointConfig{Store: store},
	}
	res, rep, err := core.RunWithRecovery(cfg, 1, func(pe *core.PE) error {
		restored := pe.RegisterCheckpoint(func() []byte { return nil }, func([]byte) {})
		base := pe.AllocBlocks(96)
		if restored {
			h := NewView(pe).Health(2)
			if h.Generation != 1 {
				return fmt.Errorf("PE %d: Generation = %d after recovery, want 1", pe.ID(), h.Generation)
			}
			if !h.AllAlive() {
				return fmt.Errorf("PE %d: recovered peer still reported dead: %+v", pe.ID(), h.Peers)
			}
			for _, st := range h.Peers {
				if !st.Recovered || st.Gen != 1 {
					return fmt.Errorf("PE %d: peer %d not marked recovered: %+v", pe.ID(), st.Kernel, st)
				}
				if want := fmt.Sprintf("recovered(gen=%d)", st.Gen); !strings.Contains(st.String(), want) {
					return fmt.Errorf("PE %d: status %q missing %q", pe.ID(), st, want)
				}
			}
			pe.Barrier()
			return nil
		}
		if h := NewView(pe).Health(1); h.Generation != 0 {
			return fmt.Errorf("PE %d: Generation = %d before any recovery, want 0", pe.ID(), h.Generation)
		}
		pe.Barrier()
		if err := pe.Checkpoint(); err != nil {
			return err
		}
		// March into the scheduled kill (see core's recovery tests).
		remote := base + uint64(((pe.ID()+1)%3)*32)
		for pe.Now() < 4*killAt {
			_ = pe.GMRead(remote)
		}
		pe.Barrier()
		return nil
	})
	if err != nil {
		t.Fatalf("RunWithRecovery: %v", err)
	}
	if ferr := res.FirstErr(); ferr != nil {
		t.Fatal(ferr)
	}
	if !rep.Recovered() {
		t.Fatalf("no recovery happened: %+v", rep)
	}
}

// TestHealthReportsVoluntaryLeave has one PE leave the membership and
// verifies the SSI health view tells a planned departure apart from a
// failure: the left peer renders as left(gen=N), AllAlive still holds, and
// the leave contributes to LeftPeers rather than Failures.
func TestHealthReportsVoluntaryLeave(t *testing.T) {
	const n = 3
	run(t, n, func(pe *core.PE) error {
		base := pe.AllocBlocks(n * pe.Space().BlockWords)
		pe.Barrier()
		pe.GMWrite(base+uint64(pe.ID()), int64(pe.ID()+1))
		pe.Barrier()
		if pe.ID() == n-1 {
			if err := pe.Leave(); err != nil {
				return err
			}
		}
		pe.Barrier()
		if pe.ID() == 0 {
			rep := NewView(pe).Health(2)
			if !rep.AllAlive() {
				return fmt.Errorf("voluntary leave broke AllAlive: %+v", rep.Peers)
			}
			if rep.Failures != 0 {
				return fmt.Errorf("voluntary leave counted as %d failures", rep.Failures)
			}
			if rep.LeftPeers != 1 {
				return fmt.Errorf("LeftPeers = %d, want 1", rep.LeftPeers)
			}
			var left *PeerStatus
			for i := range rep.Peers {
				if rep.Peers[i].Kernel == n-1 {
					left = &rep.Peers[i]
				} else if rep.Peers[i].Left {
					return fmt.Errorf("peer %d wrongly marked left", rep.Peers[i].Kernel)
				}
			}
			if left == nil || !left.Left {
				return fmt.Errorf("left peer not reported: %+v", rep.Peers)
			}
			if left.LeftGen == 0 {
				return fmt.Errorf("left peer has zero generation: %+v", *left)
			}
			s := left.String()
			if !strings.Contains(s, fmt.Sprintf("left(gen=%d)", left.LeftGen)) {
				return fmt.Errorf("String() = %q, want left(gen=%d)", s, left.LeftGen)
			}
			if strings.Contains(s, "down") {
				return fmt.Errorf("left peer rendered as down: %q", s)
			}
		}
		pe.Barrier()
		return nil
	})
}
