// Package ssi builds the single-system-image layer on top of the DSE
// runtime: the cluster presents itself to applications as one machine with
// one process table, one name space and one load picture, regardless of
// which physical workstation hosts which DSE kernel — the stated goal of
// the paper ("users can freely use these cluster computing systems without
// knowing the underlying system architecture").
package ssi

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/gmem"
	"repro/internal/procmgmt"
	"repro/internal/sim"
	"repro/internal/trace"
)

// View is a PE's single-machine view of the whole cluster.
type View struct {
	pe   *core.PE
	jobs JobSource
}

// NewView wraps a PE.
func NewView(pe *core.PE) *View { return &View{pe: pe} }

// JobRow is one scheduler job in the single-system image: the cluster's
// "process table" entry for multi-job operation (dsesched). States are
// "queued", "running", "done", "failed" and "cancelled".
type JobRow struct {
	ID          int     `json:"id"`
	Name        string  `json:"name"`
	State       string  `json:"state"`
	PEs         int     `json:"pes"`          // gang size (PEs held while running)
	QuotaBlocks uint64  `json:"quota_blocks"` // namespace quota, in GM blocks
	UsedBlocks  uint64  `json:"used_blocks"`  // blocks actually allocated
	Priority    int     `json:"priority"`
	WaitMS      float64 `json:"wait_ms"`         // queue wait (so far, or final)
	RunMS       float64 `json:"run_ms"`          // runtime (so far, or final)
	Error       string  `json:"error,omitempty"` // failure reason, failed jobs
}

// JobSource provides live scheduler job rows to the view (implemented by
// sched.Scheduler); nil until BindJobs.
type JobSource interface {
	JobRows() []JobRow
}

// BindJobs attaches a scheduler's job table to this view, so Jobs reports
// the cluster's multi-job state alongside the process table.
func (v *View) BindJobs(src JobSource) { v.jobs = src }

// Jobs returns the scheduler's per-job rows, or nil when no scheduler is
// bound to this view.
func (v *View) Jobs() []JobRow {
	if v.jobs == nil {
		return nil
	}
	return v.jobs.JobRows()
}

// NumCPU reports the cluster-wide processor count — the "machine size" a
// user of the single system sees.
func (v *View) NumCPU() int { return v.pe.N() }

// Uname describes the virtual machine.
func (v *View) Uname() string {
	return fmt.Sprintf("DSE cluster: %d processors (this PE: %d on %s)",
		v.pe.N(), v.pe.ID(), v.pe.Hostname())
}

// Processes returns the global process table.
func (v *View) Processes() []procmgmt.Entry { return v.pe.Processes() }

// LoadByHost reports running DSE processes per physical machine.
func (v *View) LoadByHost() map[string]int {
	load := make(map[string]int)
	for _, e := range v.Processes() {
		if e.State == procmgmt.StateRunning {
			load[e.Host]++
		}
	}
	return load
}

// LeastLoadedKernel picks the kernel on the least-loaded machine: the
// placement decision a load-aware SSI scheduler would make for new work.
// Ties break toward the lowest kernel id, deterministically.
func (v *View) LeastLoadedKernel() int {
	entries := v.Processes()
	load := make(map[string]int)
	hostOf := make(map[int32]string)
	for _, e := range entries {
		hostOf[e.Kernel] = e.Host
		if e.State == procmgmt.StateRunning {
			load[e.Host]++
		}
	}
	kernels := make([]int, 0, len(hostOf))
	for k := range hostOf {
		kernels = append(kernels, int(k))
	}
	sort.Ints(kernels)
	best, bestLoad := v.pe.ID(), int(^uint(0)>>1)
	for _, k := range kernels {
		if l := load[hostOf[int32(k)]]; l < bestLoad {
			best, bestLoad = k, l
		}
	}
	return best
}

// PeerStatus reports one kernel's liveness as seen from this PE.
type PeerStatus struct {
	Kernel int
	Alive  bool
	RTT    sim.Duration // valid only when Alive
	// Gen is the cluster view generation the answering peer serves under:
	// 0 for the original incarnation, N after the Nth checkpoint recovery.
	// Valid only when Alive.
	Gen uint64
	// Recovered marks a peer that rejoined through checkpoint/restart
	// recovery (Gen > 0) rather than surviving uninterrupted.
	Recovered bool
	// Left marks a peer that voluntarily left the membership (PE.Leave):
	// its blocks were re-homed and it serves no global memory, but the
	// kernel is still running — a planned departure, not a failure.
	Left bool
	// LeftGen is the membership generation of the leave transition.
	// Valid only when Left.
	LeftGen uint64
}

// String renders one probe result, e.g. "kernel 2: alive rtt=1.2ms
// recovered(gen=1)" for a peer that rejoined after a recovery, or
// "kernel 2: left(gen=3)" for one that departed voluntarily — rendered
// distinctly from "down" so operators can tell planned shrink from failure.
func (s PeerStatus) String() string {
	if s.Left {
		return fmt.Sprintf("kernel %d: left(gen=%d)", s.Kernel, s.LeftGen)
	}
	if !s.Alive {
		return fmt.Sprintf("kernel %d: down", s.Kernel)
	}
	if s.Recovered {
		return fmt.Sprintf("kernel %d: alive rtt=%v recovered(gen=%d)", s.Kernel, s.RTT, s.Gen)
	}
	return fmt.Sprintf("kernel %d: alive rtt=%v", s.Kernel, s.RTT)
}

// ProbePeers pings every other kernel and reports which answered — a
// simple SSI liveness sweep. The cluster must be configured with a
// core.Config.RequestTimeout, otherwise an undetected dead peer would block
// the probe forever. A peer the transport's failure detector has already
// declared dead fails immediately (core.PeerDownError) without waiting out
// the timeout.
//
// A peer that died and was brought back by checkpoint recovery
// (core.RunWithRecovery) answers probes again in the restarted incarnation:
// the probe result carries the new view generation instead of reporting the
// peer dead forever. Clusters restart as a unit, so an answering peer's
// generation is the prober's own.
// A peer that voluntarily left the membership (PE.Leave) is reported with
// Left set and the generation of its departure; it typically still answers
// probes (left kernels keep running as clients) but no longer serves global
// memory.
func (v *View) ProbePeers() []PeerStatus {
	gen := v.pe.ViewGeneration()
	members := v.pe.Members()
	out := make([]PeerStatus, 0, v.pe.N()-1)
	for k := 0; k < v.pe.N(); k++ {
		if k == v.pe.ID() {
			continue
		}
		st := PeerStatus{Kernel: k}
		if k < len(members) && members[k].State == gmem.MemberLeft {
			st.Left = true
			st.LeftGen = members[k].Gen
		}
		if rtt, err := v.pe.PingErr(k); err == nil {
			st.Alive = true
			st.RTT = rtt
			st.Gen = gen
			st.Recovered = gen > 0
		}
		out = append(out, st)
	}
	return out
}

// HealthReport summarises cluster liveness from one PE's vantage point
// over several probe rounds — the SSI operator's "is the machine healthy"
// answer, with a latency distribution instead of a single sample.
type HealthReport struct {
	// Peers is the last round's per-peer status. A peer is Alive when it
	// answered the final round's probe.
	Peers []PeerStatus
	// Rounds is how many probe sweeps ran.
	Rounds int
	// ProbeRTT aggregates every successful probe's round trip across all
	// rounds and peers.
	ProbeRTT trace.Histogram
	// Failures counts probes that went unanswered across all rounds.
	// Peers that voluntarily left the membership are never counted here:
	// a planned departure is not an availability failure.
	Failures int
	// LeftPeers counts peers in the final round that had voluntarily left
	// the membership (see PeerStatus.Left).
	LeftPeers int
	// Generation is the cluster view generation the report was taken
	// under: 0 for the original incarnation, N after the Nth checkpoint
	// recovery (see core.RunWithRecovery).
	Generation uint64
}

// AllAlive reports whether every peer answered the final probe round.
// Peers that voluntarily left the membership are skipped: a planned
// departure does not make the cluster unhealthy.
func (r *HealthReport) AllAlive() bool {
	for i := range r.Peers {
		if !r.Peers[i].Alive && !r.Peers[i].Left {
			return false
		}
	}
	return true
}

// Health probes every peer rounds times (at least once) and aggregates the
// results. Like ProbePeers it needs core.Config.RequestTimeout configured to
// bound probes of silently-dead peers.
func (v *View) Health(rounds int) HealthReport {
	if rounds < 1 {
		rounds = 1
	}
	rep := HealthReport{Rounds: rounds, Generation: v.pe.ViewGeneration()}
	for r := 0; r < rounds; r++ {
		peers := v.ProbePeers()
		for i := range peers {
			switch {
			case peers[i].Alive:
				rep.ProbeRTT.Observe(peers[i].RTT)
			case peers[i].Left:
				// Voluntary leave: not an availability failure.
			default:
				rep.Failures++
			}
		}
		if r == rounds-1 {
			rep.Peers = peers
		}
	}
	for i := range rep.Peers {
		if rep.Peers[i].Left {
			rep.LeftPeers++
		}
	}
	return rep
}

// Registry is a cluster-global name service: any PE can publish a 64-bit
// value under a string name and any other PE can look it up — typically a
// global-memory base address, giving applications location-transparent
// naming of shared structures.
//
// All PEs must construct the Registry at the same point in their allocation
// sequence (it reserves global memory deterministically).
type Registry struct {
	pe     *core.PE
	base   uint64
	cap    int
	lockID int32
}

// slotWords is the per-entry layout: [hash, value].
const slotWords = 2

// registryLockID is the cluster lock protecting every Registry; distinct
// registries share it (publishes are rare).
const registryLockID int32 = 1<<30 - 1

// NewRegistry reserves capacity naming slots in global memory.
func NewRegistry(pe *core.PE, capacity int) *Registry {
	if capacity <= 0 {
		capacity = 64
	}
	return &Registry{
		pe:     pe,
		base:   pe.AllocBlocks(capacity * slotWords),
		cap:    capacity,
		lockID: registryLockID,
	}
}

// fnv1a hashes a name to a non-zero 64-bit key (zero marks an empty slot).
func fnv1a(name string) int64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	if h == 0 {
		h = 1
	}
	return int64(h)
}

// Publish stores value under name. Republishing a name overwrites it.
// It fails when the registry is full.
func (r *Registry) Publish(name string, value int64) error {
	key := fnv1a(name)
	r.pe.Lock(r.lockID)
	defer r.pe.Unlock(r.lockID)
	for i := 0; i < r.cap; i++ {
		slot := r.base + uint64(i*slotWords)
		h := r.pe.GMRead(slot)
		if h == 0 || h == key {
			r.pe.GMWrite(slot+1, value)
			r.pe.GMWrite(slot, key)
			return nil
		}
	}
	return fmt.Errorf("ssi: registry full (%d names)", r.cap)
}

// Lookup retrieves the value published under name.
func (r *Registry) Lookup(name string) (int64, bool) {
	key := fnv1a(name)
	for i := 0; i < r.cap; i++ {
		slot := r.base + uint64(i*slotWords)
		h := r.pe.GMRead(slot)
		if h == 0 {
			return 0, false
		}
		if h == key {
			return r.pe.GMRead(slot + 1), true
		}
	}
	return 0, false
}
