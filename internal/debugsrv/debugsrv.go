// Package debugsrv is the node debug endpoint shared by the dsenode and
// dsesched binaries: a JSON metrics snapshot at /metrics and the standard
// pprof handlers under /debug/pprof/. It reads the shared live round-trip
// histogram while the node is still running — the concurrency the
// trace.Histogram atomics exist for — and, when a scheduler is attached,
// folds its queue-depth/utilization gauges and per-job rows into the same
// document, so one endpoint answers "what is this node doing" for both
// single-program and multi-job operation.
package debugsrv

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/ssi"
	"repro/internal/trace"
)

// metricsSchemaVersion versions the /metrics JSON document.
const metricsSchemaVersion = 1

// Config attaches optional sources to the endpoint.
type Config struct {
	// Node and N identify this kernel and the cluster size.
	Node, N int
	// Sched, when non-nil, is called per request for the scheduler's gauge
	// snapshot (queue depth, utilization, throughput — any JSON-encodable
	// value); it appears under "sched" in the document.
	Sched func() interface{}
	// Jobs, when non-nil, supplies the scheduler's per-job rows (the SSI
	// process-table view of multi-job operation) under "jobs".
	Jobs ssi.JobSource
}

// Server serves live node observability over HTTP.
type Server struct {
	cfg     Config
	start   time.Time
	liveRTT *trace.Histogram // shared with every PE via core.Config.LiveRTT

	mu    sync.Mutex
	state string // "running", then "done"
	final *core.Result

	ln  net.Listener
	srv *http.Server
}

// Start listens on addr and serves /metrics and /debug/pprof/.
func Start(addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ds := &Server{
		cfg:     cfg,
		start:   time.Now(),
		liveRTT: &trace.Histogram{},
		state:   "running",
		ln:      ln,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", ds.serveMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ds.srv = &http.Server{Handler: mux}
	go ds.srv.Serve(ln)
	return ds, nil
}

// Addr is the bound listen address (resolves ":0" requests).
func (ds *Server) Addr() string { return ds.ln.Addr().String() }

// LiveRTT is the histogram to share with the cluster via
// core.Config.LiveRTT; /metrics reads it while the run is live.
func (ds *Server) LiveRTT() *trace.Histogram { return ds.liveRTT }

// Finish records the completed run; /metrics switches to the final totals.
func (ds *Server) Finish(res *core.Result) {
	ds.mu.Lock()
	ds.state = "done"
	ds.final = res
	ds.mu.Unlock()
}

// Close stops serving.
func (ds *Server) Close() { ds.srv.Close() }

// latencyJSON is a latency distribution in microseconds.
type latencyJSON struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

func latencyFrom(h *trace.Histogram) latencyJSON {
	hs := h.Snapshot()
	us := func(d sim.Duration) float64 { return float64(d) / float64(sim.Microsecond) }
	return latencyJSON{
		Count: hs.Count,
		Mean:  us(hs.Mean()),
		P50:   us(hs.Quantile(0.50)),
		P95:   us(hs.Quantile(0.95)),
		P99:   us(hs.Quantile(0.99)),
		Max:   us(hs.Max),
	}
}

// metricsJSON is the /metrics document.
type metricsJSON struct {
	SchemaVersion int         `json:"schema_version"`
	Node          int         `json:"node"`
	NumPE         int         `json:"num_pe"`
	State         string      `json:"state"`
	UptimeSeconds float64     `json:"uptime_seconds"`
	RTTUS         latencyJSON `json:"rtt_us"`

	// Scheduler gauges and per-job rows, present when a scheduler is
	// attached (dsesched).
	Sched interface{}  `json:"sched,omitempty"`
	Jobs  []ssi.JobRow `json:"jobs,omitempty"`

	// Final run totals, present once State is "done".
	ElapsedUS    int64  `json:"elapsed_us,omitempty"`
	MsgsSent     uint64 `json:"msgs_sent,omitempty"`
	BytesSent    uint64 `json:"bytes_sent,omitempty"`
	RemoteGM     uint64 `json:"remote_gm,omitempty"`
	Retries      uint64 `json:"retries,omitempty"`
	StaleReplies uint64 `json:"stale_replies,omitempty"`

	// Checkpoint/restart counters (zero and omitted unless the run used
	// the checkpoint subsystem).
	Checkpoints   uint64 `json:"checkpoints,omitempty"`
	Restores      uint64 `json:"restores,omitempty"`
	SnapshotBytes uint64 `json:"snapshot_bytes,omitempty"`
	RollbackOps   uint64 `json:"rollback_ops,omitempty"`
}

func (ds *Server) serveMetrics(w http.ResponseWriter, r *http.Request) {
	ds.mu.Lock()
	state, final := ds.state, ds.final
	ds.mu.Unlock()

	doc := metricsJSON{
		SchemaVersion: metricsSchemaVersion,
		Node:          ds.cfg.Node,
		NumPE:         ds.cfg.N,
		State:         state,
		UptimeSeconds: time.Since(ds.start).Seconds(),
		RTTUS:         latencyFrom(ds.liveRTT),
	}
	if ds.cfg.Sched != nil {
		doc.Sched = ds.cfg.Sched()
	}
	if ds.cfg.Jobs != nil {
		doc.Jobs = ds.cfg.Jobs.JobRows()
	}
	if final != nil {
		doc.ElapsedUS = int64(final.Elapsed / sim.Microsecond)
		doc.MsgsSent = final.Total.MsgsSent
		doc.BytesSent = final.Total.BytesSent
		doc.RemoteGM = final.Total.RemoteGM
		doc.Retries = final.Total.Retries
		doc.StaleReplies = final.Total.StaleReplies
		doc.Checkpoints = final.Total.Checkpoints
		doc.Restores = final.Total.Restores
		doc.SnapshotBytes = final.Total.SnapshotBytes
		doc.RollbackOps = final.Total.RollbackOps
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}
