package sim

import "testing"

// BenchmarkEventDispatch measures the raw event-loop rate.
func BenchmarkEventDispatch(b *testing.B) {
	e := NewEngine(1)
	var fire func()
	n := 0
	fire = func() {
		n++
		if n < b.N {
			e.After(1, fire)
		}
	}
	e.After(1, fire)
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProcSleepSwitch measures a full process context switch
// (schedule, token handoff, wake).
func BenchmarkProcSleepSwitch(b *testing.B) {
	e := NewEngine(1)
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkChanHandoff measures a rendezvous send/recv pair.
func BenchmarkChanHandoff(b *testing.B) {
	e := NewEngine(1)
	c := NewChan[int](e, 0)
	e.Spawn("send", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			c.Send(p, i)
		}
	})
	e.Spawn("recv", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			c.Recv(p)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRand measures the PRNG.
func BenchmarkRand(b *testing.B) {
	r := NewRand(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}
