package sim

import "testing"

func TestTrySendToWaitingReceiver(t *testing.T) {
	e := NewEngine(1)
	c := NewChan[int](e, 0)
	var got int
	e.Spawn("recv", func(p *Proc) {
		v, _ := c.Recv(p)
		got = v
	})
	e.Spawn("send", func(p *Proc) {
		p.Sleep(Millisecond)
		if !c.TrySend(5) {
			t.Error("TrySend failed with a waiting receiver")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got != 5 {
		t.Fatalf("got %d", got)
	}
}

func TestTrySendFullBufferFails(t *testing.T) {
	e := NewEngine(1)
	c := NewChan[int](e, 1)
	if !c.TrySend(1) {
		t.Fatal("first TrySend should fit the buffer")
	}
	if c.TrySend(2) {
		t.Fatal("second TrySend should fail")
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestTryRecvEmptyAndBuffered(t *testing.T) {
	e := NewEngine(1)
	c := NewChan[int](e, 2)
	if _, ok := c.TryRecv(); ok {
		t.Fatal("TryRecv on empty channel succeeded")
	}
	c.TrySend(9)
	if v, ok := c.TryRecv(); !ok || v != 9 {
		t.Fatalf("TryRecv = %d,%v", v, ok)
	}
}

func TestSpuriousUnparkIsHarmless(t *testing.T) {
	e := NewEngine(1)
	c := NewChan[int](e, 0)
	var got int
	var recv *Proc
	recv = e.Spawn("recv", func(p *Proc) {
		v, _ := c.Recv(p)
		got = v
	})
	e.Spawn("annoyer", func(p *Proc) {
		// Wake the receiver without giving it data: it must re-park.
		recv.Unpark()
		recv.Unpark()
		p.Sleep(Millisecond)
		c.Send(p, 3)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got != 3 {
		t.Fatalf("got %d", got)
	}
}

func TestStopAbandonsRun(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.At(1, func() { fired++; e.Stop() })
	e.At(2, func() { fired++ })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (stopped)", fired)
	}
}

func TestRunUntilThenRunContinues(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	if err := e.RunUntil(15); err != nil {
		t.Fatal(err)
	}
	if len(order) != 1 {
		t.Fatalf("order = %v after RunUntil", order)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[1] != 2 {
		t.Fatalf("order = %v after Run", order)
	}
}

func TestChanCloseDrainsBufferFirst(t *testing.T) {
	e := NewEngine(1)
	c := NewChan[int](e, 4)
	c.TrySend(1)
	c.TrySend(2)
	c.Close()
	var vals []int
	closedOK := false
	e.Spawn("recv", func(p *Proc) {
		for {
			v, ok := c.Recv(p)
			if !ok {
				closedOK = true
				return
			}
			vals = append(vals, v)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(vals) != 2 || vals[0] != 1 || vals[1] != 2 {
		t.Fatalf("vals = %v", vals)
	}
	if !closedOK {
		t.Fatal("close not observed after drain")
	}
}

func TestEngineForkedRandsIndependent(t *testing.T) {
	r := NewRand(5)
	a, b := r.Fork(), r.Fork()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked generators correlated: %d/100", same)
	}
}
