package sim

// Proc is a cooperative simulated process. A Proc runs on its own goroutine
// but only while it holds the engine's execution token; every blocking
// operation (Sleep, Park, channel operations) returns the token to the
// engine, which advances the virtual clock and wakes the next process.
//
// All Proc methods must be called from the process's own goroutine.
type Proc struct {
	eng    *Engine
	name   string
	pid    int
	wake   chan struct{}
	parked bool
	done   bool
}

// Name returns the name given to Spawn.
func (p *Proc) Name() string { return p.name }

// PID returns the engine-unique process id (1-based, in spawn order).
func (p *Proc) PID() int { return p.pid }

// Engine returns the owning engine.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// yield returns the execution token to the engine and blocks until resumed.
func (p *Proc) yield() {
	p.eng.ack <- struct{}{}
	<-p.wake
}

// Sleep advances this process's virtual time by d, letting other processes
// run in the meantime. Non-positive durations yield the token but do not
// advance time (a fairness point at the current instant).
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.eng.schedule(p.eng.now+d, func() { p.eng.resume(p) })
	p.yield()
}

// Park blocks the process until another process or event calls Unpark.
// The caller must have registered itself somewhere an Unpark will find it;
// parking with no registered waker deadlocks the run (and is reported).
func (p *Proc) Park() {
	p.parked = true
	p.yield()
}

// Unpark schedules p to resume at the current virtual time. It may be called
// from any process or event callback. Unparking a process that is not parked
// is a no-op by the time the wake event fires.
func (p *Proc) Unpark() {
	p.eng.schedule(p.eng.now, func() {
		if p.parked && !p.done {
			p.eng.resume(p)
		}
	})
}

// Spawn starts a child process at the current virtual time.
func (p *Proc) Spawn(name string, fn func(*Proc)) *Proc {
	return p.eng.Spawn(name, fn)
}
