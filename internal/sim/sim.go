// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine models virtual time with nanosecond resolution. Simulated
// activities run as cooperative processes: ordinary goroutines that hold an
// execution token handed out by the engine, so that exactly one process (or
// the engine itself) runs at any instant. Scheduling is fully deterministic:
// events firing at the same virtual time are ordered by their creation
// sequence number, and all randomness comes from a seedable PRNG.
//
// The package is the foundation for the cluster substrate: machines, the
// Ethernet bus and DSE kernels are all sim processes exchanging values over
// simulated channels, while computation advances virtual time through
// Proc.Sleep according to per-platform cost models.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
)

// Time is a point in virtual time, in nanoseconds since the start of the run.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration = Time

// Common durations, mirroring time package conventions.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time as seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// ErrDeadlock is returned by Run when no events remain but live processes
// are still parked waiting for one another.
var ErrDeadlock = errors.New("sim: deadlock: all processes parked and no events pending")

// event is a scheduled callback. Events at equal times fire in creation order.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine owns the virtual clock and the event queue.
//
// An Engine must be driven by a single caller: construct it, spawn the
// initial processes, then call Run. Processes may spawn further processes
// and schedule callbacks while the run is in progress.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	rng    *Rand

	ack     chan struct{} // a running process signals here when it yields or exits
	procs   map[*Proc]struct{}
	nextPID int
	stats   EngineStats
	running bool
	stopped bool
}

// EngineStats aggregates counters over a run.
type EngineStats struct {
	Events    uint64 // events dispatched
	Spawned   int    // processes ever spawned
	Completed int    // processes that ran to completion
}

// NewEngine returns an engine with its clock at zero and PRNG seeded with seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{
		rng:   NewRand(seed),
		ack:   make(chan struct{}),
		procs: make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic PRNG.
func (e *Engine) Rand() *Rand { return e.rng }

// Stats returns a snapshot of the run counters.
func (e *Engine) Stats() EngineStats { return e.stats }

// schedule enqueues fn to run at time at (>= now).
func (e *Engine) schedule(at Time, fn func()) *event {
	if at < e.now {
		at = e.now
	}
	e.seq++
	ev := &event{at: at, seq: e.seq, fn: fn}
	heap.Push(&e.events, ev)
	return ev
}

// At schedules fn to run in engine context at absolute virtual time at.
// Scheduling in the past clamps to the present.
func (e *Engine) At(at Time, fn func()) { e.schedule(at, fn) }

// After schedules fn to run in engine context after d has elapsed.
func (e *Engine) After(d Duration, fn func()) { e.schedule(e.now+d, fn) }

// Spawn creates a process named name running fn and schedules it to start
// at the current virtual time. It may be called before Run or from any
// running process.
func (e *Engine) Spawn(name string, fn func(*Proc)) *Proc {
	e.nextPID++
	p := &Proc{
		eng:  e,
		name: name,
		pid:  e.nextPID,
		wake: make(chan struct{}),
	}
	e.procs[p] = struct{}{}
	e.stats.Spawned++
	go func() {
		<-p.wake // wait for the start event to hand us the token
		fn(p)
		p.done = true
		e.stats.Completed++
		delete(e.procs, p)
		e.ack <- struct{}{} // return the token
	}()
	e.schedule(e.now, func() { e.resume(p) })
	return p
}

// resume hands the execution token to p and blocks until p yields or exits.
// It must only be called from engine context (inside an event callback).
func (e *Engine) resume(p *Proc) {
	if p.done {
		return
	}
	p.parked = false
	p.wake <- struct{}{}
	<-e.ack
}

// Run dispatches events until none remain, then reports how the run ended.
// It returns nil when every spawned process has completed, ErrDeadlock when
// live processes remain parked with no pending events, and the result of
// Stop if the run was stopped explicitly.
func (e *Engine) Run() error {
	if e.running {
		return errors.New("sim: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.events) > 0 && !e.stopped {
		ev := heap.Pop(&e.events).(*event)
		if ev.fn == nil {
			continue // cancelled
		}
		e.now = ev.at
		e.stats.Events++
		ev.fn()
	}
	if e.stopped {
		return nil
	}
	if len(e.procs) > 0 {
		return fmt.Errorf("%w: %s", ErrDeadlock, e.parkedNames())
	}
	return nil
}

// RunUntil dispatches events up to and including virtual time limit.
// The clock is left at min(limit, time of last dispatched event).
func (e *Engine) RunUntil(limit Time) error {
	if e.running {
		return errors.New("sim: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.events) > 0 && !e.stopped {
		if e.events[0].at > limit {
			return nil
		}
		ev := heap.Pop(&e.events).(*event)
		if ev.fn == nil {
			continue
		}
		e.now = ev.at
		e.stats.Events++
		ev.fn()
	}
	return nil
}

// Stop ends the run after the current event completes. Processes that are
// still parked are abandoned (their goroutines stay blocked until the test
// binary exits); Stop is intended for harness timeouts, not normal shutdown.
func (e *Engine) Stop() { e.stopped = true }

func (e *Engine) parkedNames() string {
	names := make([]string, 0, len(e.procs))
	for p := range e.procs {
		names = append(names, fmt.Sprintf("%s(#%d)", p.name, p.pid))
	}
	sort.Strings(names)
	s := ""
	for i, n := range names {
		if i > 0 {
			s += ", "
		}
		s += n
	}
	return s
}
