package sim

import (
	"testing"
	"testing/quick"
)

func TestClockAdvancesThroughSleep(t *testing.T) {
	e := NewEngine(1)
	var end Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * Millisecond)
		p.Sleep(7 * Millisecond)
		end = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if end != 12*Millisecond {
		t.Fatalf("end time = %v, want 12ms", end)
	}
}

func TestEventsFireInTimeThenSeqOrder(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.At(10, func() { order = append(order, 2) })
	e.At(5, func() { order = append(order, 1) })
	e.At(10, func() { order = append(order, 3) }) // same time, later seq
	e.At(20, func() { order = append(order, 4) })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{1, 2, 3, 4}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSchedulingInPastClampsToNow(t *testing.T) {
	e := NewEngine(1)
	var at Time = -1
	e.At(100, func() {
		e.At(50, func() { at = e.Now() }) // in the past
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 100 {
		t.Fatalf("past-scheduled event fired at %v, want 100", at)
	}
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	runOnce := func() []string {
		e := NewEngine(42)
		var log []string
		e.Spawn("a", func(p *Proc) {
			for i := 0; i < 3; i++ {
				log = append(log, "a")
				p.Sleep(2 * Millisecond)
			}
		})
		e.Spawn("b", func(p *Proc) {
			for i := 0; i < 2; i++ {
				log = append(log, "b")
				p.Sleep(3 * Millisecond)
			}
		})
		if err := e.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return log
	}
	first := runOnce()
	for trial := 0; trial < 5; trial++ {
		got := runOnce()
		if len(got) != len(first) {
			t.Fatalf("nondeterministic length: %v vs %v", got, first)
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("nondeterministic interleave: %v vs %v", got, first)
			}
		}
	}
}

func TestUnbufferedChanRendezvous(t *testing.T) {
	e := NewEngine(1)
	c := NewChan[int](e, 0)
	var got int
	var recvAt Time
	e.Spawn("recv", func(p *Proc) {
		v, ok := c.Recv(p)
		if !ok {
			t.Error("recv: channel unexpectedly closed")
		}
		got = v
		recvAt = p.Now()
	})
	e.Spawn("send", func(p *Proc) {
		p.Sleep(4 * Millisecond)
		c.Send(p, 99)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got != 99 {
		t.Fatalf("got %d, want 99", got)
	}
	if recvAt != 4*Millisecond {
		t.Fatalf("recv completed at %v, want 4ms", recvAt)
	}
}

func TestBufferedChanBlocksWhenFull(t *testing.T) {
	e := NewEngine(1)
	c := NewChan[int](e, 2)
	var sendDone Time
	e.Spawn("send", func(p *Proc) {
		c.Send(p, 1)
		c.Send(p, 2)
		c.Send(p, 3) // must block until the receiver drains one
		sendDone = p.Now()
	})
	e.Spawn("recv", func(p *Proc) {
		p.Sleep(10 * Millisecond)
		for i := 0; i < 3; i++ {
			if _, ok := c.Recv(p); !ok {
				t.Error("unexpected close")
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sendDone != 10*Millisecond {
		t.Fatalf("third send completed at %v, want 10ms", sendDone)
	}
}

func TestChanFIFOAcrossManySenders(t *testing.T) {
	e := NewEngine(1)
	c := NewChan[int](e, 0)
	const n = 10
	for i := 0; i < n; i++ {
		i := i
		e.Spawn("send", func(p *Proc) {
			p.Sleep(Duration(i) * Millisecond)
			c.Send(p, i)
		})
	}
	var got []int
	e.Spawn("recv", func(p *Proc) {
		for i := 0; i < n; i++ {
			v, _ := c.Recv(p)
			got = append(got, v)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < n; i++ {
		if got[i] != i {
			t.Fatalf("FIFO violated: got %v", got)
		}
	}
}

func TestChanCloseWakesReceivers(t *testing.T) {
	e := NewEngine(1)
	c := NewChan[int](e, 0)
	closedSeen := 0
	for i := 0; i < 3; i++ {
		e.Spawn("recv", func(p *Proc) {
			if _, ok := c.Recv(p); !ok {
				closedSeen++
			}
		})
	}
	e.Spawn("closer", func(p *Proc) {
		p.Sleep(Millisecond)
		c.Close()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if closedSeen != 3 {
		t.Fatalf("closedSeen = %d, want 3", closedSeen)
	}
}

func TestRecvTimeout(t *testing.T) {
	e := NewEngine(1)
	c := NewChan[int](e, 0)
	var timedOut bool
	var at Time
	e.Spawn("recv", func(p *Proc) {
		_, _, timedOut = c.RecvTimeout(p, 5*Millisecond)
		at = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !timedOut {
		t.Fatal("expected timeout")
	}
	if at != 5*Millisecond {
		t.Fatalf("timeout fired at %v, want 5ms", at)
	}
}

func TestRecvTimeoutValueBeatsDeadline(t *testing.T) {
	e := NewEngine(1)
	c := NewChan[int](e, 0)
	var v int
	var ok, timedOut bool
	e.Spawn("recv", func(p *Proc) {
		v, ok, timedOut = c.RecvTimeout(p, 50*Millisecond)
	})
	e.Spawn("send", func(p *Proc) {
		p.Sleep(2 * Millisecond)
		c.Send(p, 7)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if timedOut || !ok || v != 7 {
		t.Fatalf("got v=%d ok=%v timedOut=%v, want 7/true/false", v, ok, timedOut)
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := NewEngine(1)
	c := NewChan[int](e, 0)
	e.Spawn("stuck", func(p *Proc) {
		c.Recv(p) // nobody will ever send
	})
	err := e.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestSpawnFromProc(t *testing.T) {
	e := NewEngine(1)
	var childRan bool
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(Millisecond)
		p.Spawn("child", func(q *Proc) {
			q.Sleep(Millisecond)
			childRan = true
		})
		p.Sleep(5 * Millisecond)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !childRan {
		t.Fatal("child never ran")
	}
}

func TestRunUntilStopsAtLimit(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.At(10, func() { fired++ })
	e.At(20, func() { fired++ })
	e.At(30, func() { fired++ })
	if err := e.RunUntil(20); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("clock = %v, want 20", e.Now())
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(123), NewRand(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed generators diverged")
		}
	}
	c := NewRand(124)
	same := 0
	a2 := NewRand(123)
	for i := 0; i < 100; i++ {
		if a2.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestRandIntnBounds(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		if n == 0 {
			return true
		}
		r := NewRand(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(int(n))
			if v < 0 || v >= int(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

// Property: for any schedule of sleeps, total elapsed virtual time of a
// single process equals the sum of its sleeps.
func TestSleepSumProperty(t *testing.T) {
	f := func(durs []uint16) bool {
		e := NewEngine(1)
		var total Duration
		var end Time
		e.Spawn("p", func(p *Proc) {
			for _, d := range durs {
				dd := Duration(d) * Microsecond
				total += dd
				p.Sleep(dd)
			}
			end = p.Now()
		})
		if err := e.Run(); err != nil {
			return false
		}
		return end == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: values sent through a buffered channel arrive in order and
// none are lost, for any buffer size and message count.
func TestChanConservationProperty(t *testing.T) {
	f := func(capacity uint8, count uint8) bool {
		e := NewEngine(9)
		c := NewChan[int](e, int(capacity))
		n := int(count)
		var got []int
		e.Spawn("send", func(p *Proc) {
			for i := 0; i < n; i++ {
				c.Send(p, i)
			}
		})
		e.Spawn("recv", func(p *Proc) {
			for i := 0; i < n; i++ {
				v, ok := c.Recv(p)
				if !ok {
					return
				}
				got = append(got, v)
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		if len(got) != n {
			return false
		}
		for i := 0; i < n; i++ {
			if got[i] != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineStatsCountProcs(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 4; i++ {
		e.Spawn("p", func(p *Proc) { p.Sleep(Millisecond) })
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	s := e.Stats()
	if s.Spawned != 4 || s.Completed != 4 {
		t.Fatalf("stats = %+v, want 4 spawned/completed", s)
	}
	if s.Events == 0 {
		t.Fatal("no events recorded")
	}
}
