package sim

// Chan is a simulated channel carrying values of type T between processes.
// Semantics mirror Go channels — FIFO delivery, optional buffering, blocking
// send when full and blocking receive when empty — except that transfers are
// instantaneous in virtual time. Network latency is modelled separately (by
// the Ethernet bus), not by the channel.
//
// Chan methods must be called from process context (they take the calling
// Proc), with the exception of Len and Close-from-event usage noted below.
type Chan[T any] struct {
	eng    *Engine
	buf    []T
	cap    int
	sendq  []*chanWaiter[T]
	recvq  []*chanWaiter[T]
	closed bool
}

type chanWaiter[T any] struct {
	p     *Proc
	val   T
	ok    bool
	ready bool
}

// NewChan returns a channel with the given buffer capacity (0 = rendezvous).
func NewChan[T any](e *Engine, capacity int) *Chan[T] {
	if capacity < 0 {
		capacity = 0
	}
	return &Chan[T]{eng: e, cap: capacity}
}

// Len reports the number of buffered values.
func (c *Chan[T]) Len() int { return len(c.buf) }

// Closed reports whether Close has been called.
func (c *Chan[T]) Closed() bool { return c.closed }

// Send delivers v, blocking p while the buffer is full (or, for an
// unbuffered channel, until a receiver arrives). Send on a closed channel
// panics, as with native channels.
func (c *Chan[T]) Send(p *Proc, v T) {
	if c.closed {
		panic("sim: send on closed Chan")
	}
	// Direct handoff to a waiting receiver.
	if len(c.recvq) > 0 {
		w := c.recvq[0]
		c.recvq = c.recvq[1:]
		w.val, w.ok, w.ready = v, true, true
		w.p.Unpark()
		return
	}
	if c.cap > 0 && len(c.buf) < c.cap {
		c.buf = append(c.buf, v)
		return
	}
	// Block until a receiver takes our value.
	w := &chanWaiter[T]{p: p, val: v}
	c.sendq = append(c.sendq, w)
	for !w.ready {
		p.Park()
	}
	if c.closed && !w.ok {
		panic("sim: Chan closed while send in flight")
	}
}

// TrySend delivers v without blocking; it reports whether delivery happened.
// Unlike Send, trying to send on a closed channel is not a programming
// error: it reports false, so fire-and-forget deliveries (frames to a dead
// station, mailbox puts racing a shutdown) degrade instead of panicking.
func (c *Chan[T]) TrySend(v T) bool {
	if c.closed {
		return false
	}
	if len(c.recvq) > 0 {
		w := c.recvq[0]
		c.recvq = c.recvq[1:]
		w.val, w.ok, w.ready = v, true, true
		w.p.Unpark()
		return true
	}
	if c.cap > 0 && len(c.buf) < c.cap {
		c.buf = append(c.buf, v)
		return true
	}
	return false
}

// Recv returns the next value. ok is false only if the channel is closed and
// drained, mirroring the native comma-ok receive.
func (c *Chan[T]) Recv(p *Proc) (v T, ok bool) {
	if v, ok, got := c.tryRecvLocked(); got {
		return v, ok
	}
	w := &chanWaiter[T]{p: p}
	c.recvq = append(c.recvq, w)
	for !w.ready {
		p.Park()
	}
	return w.val, w.ok
}

// RecvTimeout is Recv with a deadline: if no value arrives within d, it
// returns ok=false with timedOut=true. A close also wakes the receiver
// (ok=false, timedOut=false).
func (c *Chan[T]) RecvTimeout(p *Proc, d Duration) (v T, ok bool, timedOut bool) {
	if v, ok, got := c.tryRecvLocked(); got {
		return v, ok, false
	}
	w := &chanWaiter[T]{p: p}
	c.recvq = append(c.recvq, w)
	fired := false
	c.eng.After(d, func() {
		if w.ready {
			return
		}
		fired = true
		w.ready = true
		w.ok = false
		c.removeRecvWaiter(w)
		w.p.Unpark()
	})
	for !w.ready {
		p.Park()
	}
	return w.val, w.ok, fired
}

// TryRecv returns a buffered or immediately-available value without blocking.
func (c *Chan[T]) TryRecv() (v T, ok bool) {
	v, ok, got := c.tryRecvLocked()
	if !got {
		var zero T
		return zero, false
	}
	return v, ok
}

// tryRecvLocked pops a value if one is available now. got=false means the
// caller must block; ok=false with got=true means closed-and-drained.
func (c *Chan[T]) tryRecvLocked() (v T, ok bool, got bool) {
	if len(c.buf) > 0 {
		v = c.buf[0]
		c.buf = c.buf[1:]
		// A blocked sender can now slot its value into the freed space.
		if len(c.sendq) > 0 {
			s := c.sendq[0]
			c.sendq = c.sendq[1:]
			c.buf = append(c.buf, s.val)
			s.ok, s.ready = true, true
			s.p.Unpark()
		}
		return v, true, true
	}
	if len(c.sendq) > 0 { // unbuffered rendezvous
		s := c.sendq[0]
		c.sendq = c.sendq[1:]
		s.ok, s.ready = true, true
		s.p.Unpark()
		return s.val, true, true
	}
	if c.closed {
		var zero T
		return zero, false, true
	}
	var zero T
	return zero, false, false
}

func (c *Chan[T]) removeRecvWaiter(w *chanWaiter[T]) {
	for i, x := range c.recvq {
		if x == w {
			c.recvq = append(c.recvq[:i], c.recvq[i+1:]...)
			return
		}
	}
}

// Close marks the channel closed and wakes all blocked receivers with
// ok=false. Close may be called from process or event context. Closing with
// senders blocked is a programming error and panics at the sender.
func (c *Chan[T]) Close() {
	if c.closed {
		return
	}
	c.closed = true
	for _, w := range c.recvq {
		w.ready = true
		w.ok = false
		w.p.Unpark()
	}
	c.recvq = nil
}
