package sim

// Rand is a small deterministic PRNG (xorshift64* with splitmix64 seeding).
// Every source of randomness in the simulator — Ethernet backoff, placement
// jitter, workload generators — draws from an engine-owned Rand so that runs
// are reproducible from the seed alone.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded deterministically from seed.
func NewRand(seed uint64) *Rand {
	// splitmix64 scramble so nearby seeds diverge immediately.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x2545f4914f6cdd1d
	}
	return &Rand{state: z}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Fork returns an independent generator derived from this one's stream,
// for subsystems that need their own sequence without perturbing others.
func (r *Rand) Fork() *Rand { return NewRand(r.Uint64()) }
