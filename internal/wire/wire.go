// Package wire defines the DSE message exchange format: the request and
// response messages that the global memory management module, the parallel
// process management module and the synchronisation primitives exchange
// between DSE kernels (paper Fig. 3, "message exchange mechanism").
//
// Messages use a fixed 48-byte little-endian header followed by an optional
// payload. The encoding is transport-independent — the same bytes travel
// over the simulated Ethernet, the in-process loopback and real TCP — which
// is the modularity/portability property the paper's reorganisation is
// after ("eliminates dependency on a specific communication protocol").
//
// # Message and buffer ownership
//
// The hot path is allocation-free: messages come from a sync.Pool
// (GetMessage/PutMessage) and own a private scratch buffer that the payload
// helpers (PutWords, PutWord, AppendRange, AppendWriteRun, DecodeInto)
// reuse across recycles. The rules:
//
//  1. A message obtained from GetMessage is owned by the caller until it is
//     passed to PutMessage; after that neither the message nor any slice
//     derived from its Data may be touched.
//  2. Transports serialise a message completely before Send returns, so a
//     request may be recycled (or reused) immediately after Send.
//  3. DecodeInto copies the payload into the message's own scratch, so the
//     source frame buffer may be recycled immediately and the decoded
//     message stays valid until its own PutMessage.
//  4. A message whose Data has been handed to application code (user
//     messages) must never be recycled — let the GC have it.
//
// Decode (without Into) retains the historical aliasing behaviour — its
// payload points into the caller's buffer — and is kept for tests and for
// callers that own the buffer outright.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/sim"
)

// Op identifies a message type.
type Op uint8

// Message operations. Request/response pairs share a Seq number.
const (
	OpInvalid Op = iota

	// Global memory management.
	OpRead         // read Count (Arg1) words at Addr
	OpReadResp     // Data = the words
	OpWrite        // write Data words at Addr
	OpWriteAck     //
	OpFetchAdd     // atomically add Arg1 to word at Addr
	OpFetchAddResp // Arg1 = previous value
	OpCAS          // compare-and-swap word at Addr: Arg1 old, Arg2 new
	OpCASResp      // Arg1 = previous value, Arg2 = 1 if swapped
	OpInvalidate   // caching protocol: drop cached block containing Addr
	OpInvAck       //

	// Synchronisation.
	OpBarrierArrive  // Tag = barrier id, Arg1 = arrival count carried upward
	OpBarrierRelease // Tag = barrier id
	OpLockAcquire    // Tag = lock id
	OpLockGrant      // Tag = lock id
	OpLockRelease    // Tag = lock id
	OpSemPost        // Tag = semaphore id
	OpSemWait        // Tag = semaphore id
	OpSemGrant       // Tag = semaphore id

	// Parallel process management / SSI.
	OpProcRegister // Arg1 = kernel-local pid; registers with the global table
	OpProcRegResp  // Arg1 = assigned global pid
	OpProcExit     // Arg1 = global pid, Arg2 = exit status
	OpProcExitAck  //
	OpProcList     // request the global process table
	OpProcListResp // Data = encoded table
	OpLoadReport   // Arg1 = runnable count (SSI load exchange)

	// Application-level messages (PE to PE through the API library).
	OpUserMsg // Tag = user tag, Data = payload

	// Membership, liveness.
	OpHello   // Arg1 = protocol version
	OpWelcome //
	OpPing    //
	OpPong    //
	OpShutdown

	// Vectored (scatter/gather) global memory: many (addr, count) ranges
	// homed at one kernel travel in a single message, so a block transfer
	// or a gather costs one request per home instead of one per run.
	OpReadV     // Data = ranges (AppendRange); Arg1 = total word count
	OpReadVResp // Data = the words of every range, concatenated in order
	OpWriteV    // Data = runs (AppendWriteRun); Arg1 = run count; acked by OpWriteAck

	// OpPeerDown is a kernel-internal notification: the transport declared
	// kernel Src dead, failing the outstanding request Seq. It never travels
	// the wire; the local kernel synthesises one per pending request when a
	// peer-down event arrives.
	OpPeerDown // Src = dead kernel, Seq = failed request

	// Coordinated checkpoint (Chandy-Lamport-style marker round, taken at a
	// quiesce barrier): a PE asks its own kernel to export its slice of
	// global memory plus the coherence directory for the snapshot store.
	OpCkptMark     // Tag = checkpoint epoch
	OpCkptMarkResp // Data = encoded kernel state, Arg1 = mark virtual time

	// Elastic membership and online GM re-homing. Migrations move a block's
	// (or a member's whole) home while requests are in flight; requests that
	// reach a kernel that no longer owns the address are answered with
	// OpMigrateNack carrying a new-home hint, and the requester retries the
	// SAME Seq at the hinted home so the dedup window keeps every mutation
	// exactly-once across the handoff.
	OpMigrateStart     // Arg1 = mode (block/join/leave), Arg2 = member or dst, Addr = block addr or membership gen
	OpMigrateStartResp // Data = extracted blocks (ckpt kernel-state encoding)
	OpMigrateInstall   // Arg1 = mode, Arg2 = member, Data = blocks to adopt
	OpMigrateInstallResp
	OpMigrateCommit // Addr = first block addr, Arg1 = block count, Arg2 = new home (lazy hint + escrow release)
	OpMigrateCommitResp
	OpMigrateNack // response: request reached a non-owner; Arg1 = new-home hint
	OpJoin        // Src asks kernel 0 to open a membership transition; Arg1 = 1 granted / 0 busy (resp reuses op pair)
	OpJoinResp    // Arg1 = granted membership generation (0 = busy, retry)
	OpLeave       // graceful leave of Src; same grant protocol as OpJoin
	OpLeaveResp   // Arg1 = granted membership generation (0 = busy, retry)
	OpEpochUpdate // broadcast: member Arg1 transitioned to state Arg2 at gen Addr
	OpEpochUpdateResp

	// Tunable consistency tiers. OpFlushV publishes a release-consistency
	// write-combining buffer: same payload encoding as OpWriteV (runs via
	// AppendWriteRun), acked by OpWriteAck, but kept a distinct op so traces
	// and per-op counters can watch buffered writes trade against eager ones.
	// OpReadLease fetches the whole block containing Addr without joining the
	// coherence copyset; the response carries the block words plus the
	// granted lease term, bounding how long the requester may serve cached
	// reads from it.
	OpFlushV        // Data = runs (AppendWriteRun); Arg1 = run count; acked by OpWriteAck
	OpReadLease     // Addr = any word of the wanted block
	OpReadLeaseResp // Data = the block's words, Arg2 = lease duration (ns of the home's clock)

	// Scheduler namespaces (dsesched, DESIGN.md §15). A job's global-memory
	// namespace is a word region [base, limit); the scheduler installs one
	// binding per member at every kernel, and a bound requester's GM traffic
	// outside its region is rejected with the typed OpNsNack instead of being
	// served — kernel-side enforcement, not convention.
	OpNsBind      // bind requester Arg1 to namespace [Addr, Arg2); Arg2 = 0 unbinds
	OpNsBindAck   //
	OpNsFree      // drop the homed blocks of [Addr, Addr + Arg1*BlockWords) (namespace teardown)
	OpNsFreeAck   // Arg1 = blocks dropped at this kernel
	OpNsNack      // response: request touched memory outside the requester's namespace; Arg1 = bound base, Arg2 = bound limit
	OpJobPurge    // purge job residue: user-message tags in [Tag, Tag+Arg1) and, at kernel 0, sync state in the same id range
	OpJobPurgeAck //

	numOps // sentinel: one past the highest op
)

// Message flags (header byte 1).
const (
	// FlagRetry marks a retransmission of an earlier request with the same
	// Seq; home kernels use it together with their dedup window so retried
	// mutating operations apply exactly once.
	FlagRetry uint8 = 1 << 0
)

// NumOps is the number of defined operations; per-op counters are sized by
// it.
const NumOps = int(numOps)

// opNames is a dense name table: Op.String sits on hot trace/debug paths,
// where the previous map lookup cost a hash per call.
var opNames = [...]string{
	OpInvalid:            "invalid",
	OpRead:               "read",
	OpReadResp:           "read-resp",
	OpWrite:              "write",
	OpWriteAck:           "write-ack",
	OpFetchAdd:           "fetch-add",
	OpFetchAddResp:       "fetch-add-resp",
	OpCAS:                "cas",
	OpCASResp:            "cas-resp",
	OpInvalidate:         "invalidate",
	OpInvAck:             "inv-ack",
	OpBarrierArrive:      "barrier-arrive",
	OpBarrierRelease:     "barrier-release",
	OpLockAcquire:        "lock-acquire",
	OpLockGrant:          "lock-grant",
	OpLockRelease:        "lock-release",
	OpSemPost:            "sem-post",
	OpSemWait:            "sem-wait",
	OpSemGrant:           "sem-grant",
	OpProcRegister:       "proc-register",
	OpProcRegResp:        "proc-reg-resp",
	OpProcExit:           "proc-exit",
	OpProcExitAck:        "proc-exit-ack",
	OpProcList:           "proc-list",
	OpProcListResp:       "proc-list-resp",
	OpLoadReport:         "load-report",
	OpUserMsg:            "user-msg",
	OpHello:              "hello",
	OpWelcome:            "welcome",
	OpPing:               "ping",
	OpPong:               "pong",
	OpShutdown:           "shutdown",
	OpReadV:              "read-v",
	OpReadVResp:          "read-v-resp",
	OpWriteV:             "write-v",
	OpPeerDown:           "peer-down",
	OpCkptMark:           "ckpt-mark",
	OpCkptMarkResp:       "ckpt-mark-resp",
	OpMigrateStart:       "migrate-start",
	OpMigrateStartResp:   "migrate-start-resp",
	OpMigrateInstall:     "migrate-install",
	OpMigrateInstallResp: "migrate-install-resp",
	OpMigrateCommit:      "migrate-commit",
	OpMigrateCommitResp:  "migrate-commit-resp",
	OpMigrateNack:        "migrate-nack",
	OpJoin:               "join",
	OpJoinResp:           "join-resp",
	OpLeave:              "leave",
	OpLeaveResp:          "leave-resp",
	OpEpochUpdate:        "epoch-update",
	OpEpochUpdateResp:    "epoch-update-resp",
	OpFlushV:             "flush-v",
	OpReadLease:          "read-lease",
	OpReadLeaseResp:      "read-lease-resp",
	OpNsBind:             "ns-bind",
	OpNsBindAck:          "ns-bind-ack",
	OpNsFree:             "ns-free",
	OpNsFreeAck:          "ns-free-ack",
	OpNsNack:             "ns-nack",
	OpJobPurge:           "job-purge",
	OpJobPurgeAck:        "job-purge-ack",
}

func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("Op(%d)", uint8(op))
}

// IsResponse reports whether op answers an earlier request (and should be
// routed to the requester's reply mailbox rather than the kernel handler).
func (op Op) IsResponse() bool {
	switch op {
	case OpReadResp, OpWriteAck, OpFetchAddResp, OpCASResp, OpInvAck,
		OpLockGrant, OpSemGrant, OpBarrierRelease,
		OpProcRegResp, OpProcExitAck, OpProcListResp, OpWelcome, OpPong,
		OpReadVResp, OpCkptMarkResp,
		OpMigrateStartResp, OpMigrateInstallResp, OpMigrateCommitResp,
		OpMigrateNack, OpJoinResp, OpLeaveResp, OpEpochUpdateResp,
		OpReadLeaseResp,
		OpNsBindAck, OpNsFreeAck, OpNsNack, OpJobPurgeAck:
		return true
	}
	return false
}

// HeaderSize is the fixed encoded header length in bytes.
const HeaderSize = 48

// MaxDataLen bounds the payload so a corrupted length cannot drive huge
// allocations when decoding from an untrusted stream.
const MaxDataLen = 1 << 24

// Message is one DSE protocol message.
type Message struct {
	Op    Op
	Flags uint8 // Flag* bits (retry marking)
	// Shard is the home-side service-shard hint (header byte 2): the
	// requester stamps the shard that owns every address the message
	// touches, so a sharded kernel's dispatch stage can route the message
	// without decoding the payload. For vectored requests — whose ranges
	// are grouped per shard by the requester — it names the shard of every
	// range; for OpInvalidate/OpInvAck it carries the originating shard so
	// the ack finds the invalidation round. Zero (the default) is always
	// valid: the dispatcher falls back to hashing Addr.
	Shard uint8
	// Epoch is the sender's membership epoch, truncated to 8 bits (header
	// byte 3, previously reserved). It is advisory — the receiver's own
	// directory stays authoritative for routing — but it lets traces and
	// operators correlate a message with the membership view it was sent
	// under, and a wildly stale epoch on a NACKed request explains the NACK.
	Epoch uint8
	Src   int32  // sending kernel id
	Dst   int32  // destination kernel id
	Tag   int32  // barrier/lock/semaphore id, or user message tag
	Seq   uint64 // request id; responses echo the request's Seq
	Addr  uint64 // global memory word address
	Arg1  int64
	Arg2  int64
	Data  []byte

	// RecvAt is the transport's receive timestamp: every transport stamps
	// it (with the node's clock) just before handing the decoded message to
	// the kernel, so the observability layer can attribute queueing and
	// service time per message. It never travels the wire and is cleared on
	// recycle.
	RecvAt sim.Time

	// buf is the message-owned scratch that Data points into when the
	// payload was produced by a payload helper. Its capacity survives
	// PutMessage/GetMessage recycles, which is what makes the hot path
	// allocation-free in steady state.
	buf []byte
}

// msgPool recycles Messages together with their scratch buffers.
var msgPool = sync.Pool{New: func() interface{} { return new(Message) }}

// GetMessage returns an empty pooled Message. The caller owns it until
// PutMessage.
func GetMessage() *Message {
	return msgPool.Get().(*Message)
}

// PutMessage resets m — retaining its scratch capacity — and returns it to
// the pool. The caller must not touch m, or any slice derived from its
// Data, afterwards. Recycling a message whose Data escaped to application
// code is a use-after-free bug; leak those to the GC instead.
func PutMessage(m *Message) {
	if m == nil {
		return
	}
	buf := m.buf
	*m = Message{buf: buf[:0]}
	msgPool.Put(m)
}

func (m *Message) String() string {
	return fmt.Sprintf("%s %d->%d seq=%d tag=%d addr=%d a1=%d a2=%d len=%d",
		m.Op, m.Src, m.Dst, m.Seq, m.Tag, m.Addr, m.Arg1, m.Arg2, len(m.Data))
}

// WireSize is the encoded size in bytes.
func (m *Message) WireSize() int { return HeaderSize + len(m.Data) }

// Append encodes m onto buf and returns the extended slice.
func (m *Message) Append(buf []byte) []byte {
	var hdr [HeaderSize]byte
	hdr[0] = byte(m.Op)
	hdr[1] = m.Flags
	hdr[2] = m.Shard
	hdr[3] = m.Epoch
	binary.LittleEndian.PutUint32(hdr[4:], uint32(m.Src))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(m.Dst))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(m.Tag))
	binary.LittleEndian.PutUint64(hdr[16:], m.Seq)
	binary.LittleEndian.PutUint64(hdr[24:], m.Addr)
	binary.LittleEndian.PutUint64(hdr[32:], uint64(m.Arg1))
	binary.LittleEndian.PutUint64(hdr[40:], uint64(m.Arg2))
	// Data length is carried by the transport framing for streams; for
	// self-delimiting uses we rely on len(Data) = total-HeaderSize.
	buf = append(buf, hdr[:]...)
	return append(buf, m.Data...)
}

// Encode returns m as a fresh byte slice.
func (m *Message) Encode() []byte {
	return m.Append(make([]byte, 0, m.WireSize()))
}

// ErrShortMessage reports a buffer smaller than a header.
var ErrShortMessage = errors.New("wire: message shorter than header")

// decodeHeader fills m's header fields from buf (validated by the caller).
func decodeHeader(m *Message, buf []byte) {
	m.Op = Op(buf[0])
	m.Flags = buf[1]
	m.Shard = buf[2]
	m.Epoch = buf[3]
	m.Src = int32(binary.LittleEndian.Uint32(buf[4:]))
	m.Dst = int32(binary.LittleEndian.Uint32(buf[8:]))
	m.Tag = int32(binary.LittleEndian.Uint32(buf[12:]))
	m.Seq = binary.LittleEndian.Uint64(buf[16:])
	m.Addr = binary.LittleEndian.Uint64(buf[24:])
	m.Arg1 = int64(binary.LittleEndian.Uint64(buf[32:]))
	m.Arg2 = int64(binary.LittleEndian.Uint64(buf[40:]))
}

// Decode parses a message from buf (header + trailing payload). The payload
// slice aliases buf; use DecodeInto when buf is recycled after the call.
func Decode(buf []byte) (*Message, error) {
	if len(buf) < HeaderSize {
		return nil, ErrShortMessage
	}
	if len(buf)-HeaderSize > MaxDataLen {
		return nil, fmt.Errorf("wire: payload %d exceeds limit", len(buf)-HeaderSize)
	}
	m := &Message{}
	decodeHeader(m, buf)
	if len(buf) > HeaderSize {
		m.Data = buf[HeaderSize:]
	}
	return m, nil
}

// DecodeInto parses buf into m, copying the payload into m's own scratch
// buffer: the caller may recycle buf immediately, and m.Data stays valid
// until m itself is recycled with PutMessage.
func DecodeInto(m *Message, buf []byte) error {
	if len(buf) < HeaderSize {
		return ErrShortMessage
	}
	if len(buf)-HeaderSize > MaxDataLen {
		return fmt.Errorf("wire: payload %d exceeds limit", len(buf)-HeaderSize)
	}
	decodeHeader(m, buf)
	m.Data = nil
	if len(buf) > HeaderSize {
		m.buf = append(m.buf[:0], buf[HeaderSize:]...)
		m.Data = m.buf
	}
	return nil
}

// Words copies the payload as 64-bit little-endian words.
func (m *Message) Words() []int64 {
	return m.WordsInto(nil)
}

// WordsInto decodes the whole payload into dst, reusing its capacity, and
// returns the resized slice.
func (m *Message) WordsInto(dst []int64) []int64 {
	if len(m.Data)%8 != 0 {
		panic(fmt.Sprintf("wire: %d-byte payload is not whole words", len(m.Data)))
	}
	n := len(m.Data) / 8
	if cap(dst) < n {
		dst = make([]int64, n)
	} else {
		dst = dst[:n]
	}
	for i := range dst {
		dst[i] = int64(binary.LittleEndian.Uint64(m.Data[i*8:]))
	}
	return dst
}

// Word returns payload word i without decoding the rest of the payload.
func (m *Message) Word(i int) int64 {
	return int64(binary.LittleEndian.Uint64(m.Data[i*8:]))
}

// PayloadWords reports how many whole words the payload holds.
func (m *Message) PayloadWords() int { return len(m.Data) / 8 }

// ResetData clears the payload, retaining scratch capacity, so the Append*
// helpers can build a fresh one.
func (m *Message) ResetData() {
	m.buf = m.buf[:0]
	m.Data = nil
}

// PutWords encodes ws as the payload, reusing the message's scratch buffer.
func (m *Message) PutWords(ws []int64) {
	m.buf = AppendWords(m.buf[:0], ws)
	m.Data = m.buf
}

// PutWord encodes a single word as the payload without a slice argument.
func (m *Message) PutWord(w int64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(w))
	m.buf = append(m.buf[:0], b[:]...)
	m.Data = m.buf
}

// AppendWords appends ws to buf in wire order.
func AppendWords(buf []byte, ws []int64) []byte {
	for _, w := range ws {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(w))
		buf = append(buf, b[:]...)
	}
	return buf
}

// --- Vectored (scatter/gather) payloads ---

// rangeBytes is the encoded size of one (addr, count) range descriptor.
const rangeBytes = 16

// AppendRange appends one (addr, count) range descriptor to an OpReadV
// payload, reusing scratch, and accumulates the total word count in Arg1.
func (m *Message) AppendRange(addr uint64, count int) {
	var b [rangeBytes]byte
	binary.LittleEndian.PutUint64(b[:], addr)
	binary.LittleEndian.PutUint64(b[8:], uint64(count))
	m.buf = append(m.buf, b[:]...)
	m.Data = m.buf
	m.Arg1 += int64(count)
}

// EachRange decodes an OpReadV payload, calling fn once per range in order.
func (m *Message) EachRange(fn func(addr uint64, count int)) error {
	if len(m.Data)%rangeBytes != 0 {
		return fmt.Errorf("wire: %d-byte payload is not whole ranges", len(m.Data))
	}
	for off := 0; off < len(m.Data); off += rangeBytes {
		addr := binary.LittleEndian.Uint64(m.Data[off:])
		count := binary.LittleEndian.Uint64(m.Data[off+8:])
		if count > uint64(MaxDataLen/8) {
			return fmt.Errorf("wire: range count %d exceeds limit", count)
		}
		fn(addr, int(count))
	}
	return nil
}

// AppendWriteRun appends one (addr, words) run to an OpWriteV payload,
// reusing scratch, and counts the run in Arg1.
func (m *Message) AppendWriteRun(addr uint64, words []int64) {
	var b [rangeBytes]byte
	binary.LittleEndian.PutUint64(b[:], addr)
	binary.LittleEndian.PutUint64(b[8:], uint64(len(words)))
	m.buf = append(m.buf, b[:]...)
	m.buf = AppendWords(m.buf, words)
	m.Data = m.buf
	m.Arg1++
}

// EachRunHeader walks an OpWriteV payload's run headers without decoding
// any words — O(runs), not O(words) — for pre-scans that only need each
// run's placement (the home-side foreign-block check).
func (m *Message) EachRunHeader(fn func(addr uint64, count int)) error {
	off := 0
	for off < len(m.Data) {
		if off+rangeBytes > len(m.Data) {
			return fmt.Errorf("wire: truncated write run header at byte %d", off)
		}
		addr := binary.LittleEndian.Uint64(m.Data[off:])
		count := int(binary.LittleEndian.Uint64(m.Data[off+8:]))
		off += rangeBytes
		if count < 0 || count > (len(m.Data)-off)/8 {
			return fmt.Errorf("wire: write run at byte %d overruns payload", off-rangeBytes)
		}
		off += count * 8
		fn(addr, count)
	}
	return nil
}

// EachWriteRun decodes an OpWriteV payload, calling fn once per run in
// order. The words slice is only valid during the call (it aliases scratch,
// which is reused between runs); the possibly-grown scratch is returned for
// the caller to keep.
func (m *Message) EachWriteRun(scratch []int64, fn func(addr uint64, words []int64)) ([]int64, error) {
	off := 0
	for off < len(m.Data) {
		if off+rangeBytes > len(m.Data) {
			return scratch, fmt.Errorf("wire: truncated write run header at byte %d", off)
		}
		addr := binary.LittleEndian.Uint64(m.Data[off:])
		count := int(binary.LittleEndian.Uint64(m.Data[off+8:]))
		off += rangeBytes
		// count is untrusted: compare against the remaining payload without
		// computing count*8, which overflows for huge counts and would slip
		// past the check into a make() panic.
		if count < 0 || count > (len(m.Data)-off)/8 {
			return scratch, fmt.Errorf("wire: write run at byte %d overruns payload", off-rangeBytes)
		}
		if cap(scratch) < count {
			scratch = make([]int64, count)
		}
		ws := scratch[:count]
		for i := range ws {
			ws[i] = int64(binary.LittleEndian.Uint64(m.Data[off+i*8:]))
		}
		off += count * 8
		fn(addr, ws)
	}
	return scratch, nil
}
