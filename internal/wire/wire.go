// Package wire defines the DSE message exchange format: the request and
// response messages that the global memory management module, the parallel
// process management module and the synchronisation primitives exchange
// between DSE kernels (paper Fig. 3, "message exchange mechanism").
//
// Messages use a fixed 48-byte little-endian header followed by an optional
// payload. The encoding is transport-independent — the same bytes travel
// over the simulated Ethernet, the in-process loopback and real TCP — which
// is the modularity/portability property the paper's reorganisation is
// after ("eliminates dependency on a specific communication protocol").
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Op identifies a message type.
type Op uint8

// Message operations. Request/response pairs share a Seq number.
const (
	OpInvalid Op = iota

	// Global memory management.
	OpRead         // read Count (Arg1) words at Addr
	OpReadResp     // Data = the words
	OpWrite        // write Data words at Addr
	OpWriteAck     //
	OpFetchAdd     // atomically add Arg1 to word at Addr
	OpFetchAddResp // Arg1 = previous value
	OpCAS          // compare-and-swap word at Addr: Arg1 old, Arg2 new
	OpCASResp      // Arg1 = previous value, Arg2 = 1 if swapped
	OpInvalidate   // caching protocol: drop cached block containing Addr
	OpInvAck       //

	// Synchronisation.
	OpBarrierArrive  // Tag = barrier id, Arg1 = arrival count carried upward
	OpBarrierRelease // Tag = barrier id
	OpLockAcquire    // Tag = lock id
	OpLockGrant      // Tag = lock id
	OpLockRelease    // Tag = lock id
	OpSemPost        // Tag = semaphore id
	OpSemWait        // Tag = semaphore id
	OpSemGrant       // Tag = semaphore id

	// Parallel process management / SSI.
	OpProcRegister // Arg1 = kernel-local pid; registers with the global table
	OpProcRegResp  // Arg1 = assigned global pid
	OpProcExit     // Arg1 = global pid, Arg2 = exit status
	OpProcExitAck  //
	OpProcList     // request the global process table
	OpProcListResp // Data = encoded table
	OpLoadReport   // Arg1 = runnable count (SSI load exchange)

	// Application-level messages (PE to PE through the API library).
	OpUserMsg // Tag = user tag, Data = payload

	// Membership, liveness.
	OpHello   // Arg1 = protocol version
	OpWelcome //
	OpPing    //
	OpPong    //
	OpShutdown
)

var opNames = map[Op]string{
	OpInvalid: "invalid",
	OpRead:    "read", OpReadResp: "read-resp",
	OpWrite: "write", OpWriteAck: "write-ack",
	OpFetchAdd: "fetch-add", OpFetchAddResp: "fetch-add-resp",
	OpCAS: "cas", OpCASResp: "cas-resp",
	OpInvalidate: "invalidate", OpInvAck: "inv-ack",
	OpBarrierArrive: "barrier-arrive", OpBarrierRelease: "barrier-release",
	OpLockAcquire: "lock-acquire", OpLockGrant: "lock-grant", OpLockRelease: "lock-release",
	OpSemPost: "sem-post", OpSemWait: "sem-wait", OpSemGrant: "sem-grant",
	OpProcRegister: "proc-register", OpProcRegResp: "proc-reg-resp",
	OpProcExit: "proc-exit", OpProcExitAck: "proc-exit-ack",
	OpProcList: "proc-list", OpProcListResp: "proc-list-resp",
	OpLoadReport: "load-report",
	OpUserMsg:    "user-msg",
	OpHello:      "hello", OpWelcome: "welcome",
	OpPing: "ping", OpPong: "pong",
	OpShutdown: "shutdown",
}

func (op Op) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", uint8(op))
}

// IsResponse reports whether op answers an earlier request (and should be
// routed to the requester's reply mailbox rather than the kernel handler).
func (op Op) IsResponse() bool {
	switch op {
	case OpReadResp, OpWriteAck, OpFetchAddResp, OpCASResp, OpInvAck,
		OpLockGrant, OpSemGrant, OpBarrierRelease,
		OpProcRegResp, OpProcExitAck, OpProcListResp, OpWelcome, OpPong:
		return true
	}
	return false
}

// HeaderSize is the fixed encoded header length in bytes.
const HeaderSize = 48

// MaxDataLen bounds the payload so a corrupted length cannot drive huge
// allocations when decoding from an untrusted stream.
const MaxDataLen = 1 << 24

// Message is one DSE protocol message.
type Message struct {
	Op   Op
	Src  int32  // sending kernel id
	Dst  int32  // destination kernel id
	Tag  int32  // barrier/lock/semaphore id, or user message tag
	Seq  uint64 // request id; responses echo the request's Seq
	Addr uint64 // global memory word address
	Arg1 int64
	Arg2 int64
	Data []byte
}

func (m *Message) String() string {
	return fmt.Sprintf("%s %d->%d seq=%d tag=%d addr=%d a1=%d a2=%d len=%d",
		m.Op, m.Src, m.Dst, m.Seq, m.Tag, m.Addr, m.Arg1, m.Arg2, len(m.Data))
}

// WireSize is the encoded size in bytes.
func (m *Message) WireSize() int { return HeaderSize + len(m.Data) }

// Append encodes m onto buf and returns the extended slice.
func (m *Message) Append(buf []byte) []byte {
	var hdr [HeaderSize]byte
	hdr[0] = byte(m.Op)
	// hdr[1:4] reserved
	binary.LittleEndian.PutUint32(hdr[4:], uint32(m.Src))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(m.Dst))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(m.Tag))
	binary.LittleEndian.PutUint64(hdr[16:], m.Seq)
	binary.LittleEndian.PutUint64(hdr[24:], m.Addr)
	binary.LittleEndian.PutUint64(hdr[32:], uint64(m.Arg1))
	binary.LittleEndian.PutUint64(hdr[40:], uint64(m.Arg2))
	// Data length is carried by the transport framing for streams; for
	// self-delimiting uses we rely on len(Data) = total-HeaderSize.
	buf = append(buf, hdr[:]...)
	return append(buf, m.Data...)
}

// Encode returns m as a fresh byte slice.
func (m *Message) Encode() []byte {
	return m.Append(make([]byte, 0, m.WireSize()))
}

// ErrShortMessage reports a buffer smaller than a header.
var ErrShortMessage = errors.New("wire: message shorter than header")

// Decode parses a message from buf (header + trailing payload). The payload
// slice aliases buf.
func Decode(buf []byte) (*Message, error) {
	if len(buf) < HeaderSize {
		return nil, ErrShortMessage
	}
	m := &Message{
		Op:   Op(buf[0]),
		Src:  int32(binary.LittleEndian.Uint32(buf[4:])),
		Dst:  int32(binary.LittleEndian.Uint32(buf[8:])),
		Tag:  int32(binary.LittleEndian.Uint32(buf[12:])),
		Seq:  binary.LittleEndian.Uint64(buf[16:]),
		Addr: binary.LittleEndian.Uint64(buf[24:]),
		Arg1: int64(binary.LittleEndian.Uint64(buf[32:])),
		Arg2: int64(binary.LittleEndian.Uint64(buf[40:])),
	}
	if len(buf) > HeaderSize {
		if len(buf)-HeaderSize > MaxDataLen {
			return nil, fmt.Errorf("wire: payload %d exceeds limit", len(buf)-HeaderSize)
		}
		m.Data = buf[HeaderSize:]
	}
	return m, nil
}

// Words copies the payload as 64-bit little-endian words.
func (m *Message) Words() []int64 {
	if len(m.Data)%8 != 0 {
		panic(fmt.Sprintf("wire: %d-byte payload is not whole words", len(m.Data)))
	}
	ws := make([]int64, len(m.Data)/8)
	for i := range ws {
		ws[i] = int64(binary.LittleEndian.Uint64(m.Data[i*8:]))
	}
	return ws
}

// PutWords encodes ws as the payload.
func (m *Message) PutWords(ws []int64) {
	m.Data = AppendWords(nil, ws)
}

// AppendWords appends ws to buf in wire order.
func AppendWords(buf []byte, ws []int64) []byte {
	for _, w := range ws {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(w))
		buf = append(buf, b[:]...)
	}
	return buf
}
