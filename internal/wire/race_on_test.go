//go:build race

package wire

// raceEnabled reports that the race detector is active; it defeats
// sync.Pool reuse (items are dropped at random to expose races), so
// allocation-count assertions are skipped.
const raceEnabled = true
