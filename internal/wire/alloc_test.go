package wire

import (
	"bytes"
	"testing"
)

// The pooled fast path must be allocation-free in steady state: encode into
// a reused buffer, decode into a pooled message (payload copied to the
// message's own scratch), payload helpers reusing scratch.
func TestPooledRoundTripAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector defeats sync.Pool reuse")
	}
	var frame []byte
	words := []int64{1, -2, 3, -4, 5, -6, 7, -8}
	allocs := testing.AllocsPerRun(2000, func() {
		m := GetMessage()
		m.Op, m.Src, m.Dst, m.Seq, m.Addr = OpWrite, 1, 2, 99, 4096
		m.PutWords(words)
		frame = m.Append(frame[:0])
		PutMessage(m)

		d := GetMessage()
		if err := DecodeInto(d, frame); err != nil {
			t.Fatal(err)
		}
		if d.Op != OpWrite || d.Word(3) != -4 {
			t.Fatalf("corrupt round trip: %v", d)
		}
		PutMessage(d)
	})
	if allocs > 0 {
		t.Errorf("pooled round trip allocates %v/op, want 0", allocs)
	}
}

// DecodeInto must copy the payload so the source buffer can be recycled
// immediately.
func TestDecodeIntoCopiesPayload(t *testing.T) {
	m := &Message{Op: OpUserMsg, Data: []byte("payload")}
	frame := m.Encode()
	d := GetMessage()
	if err := DecodeInto(d, frame); err != nil {
		t.Fatal(err)
	}
	for i := HeaderSize; i < len(frame); i++ {
		frame[i] = 0xFF // clobber the source
	}
	if !bytes.Equal(d.Data, []byte("payload")) {
		t.Errorf("payload aliased the source buffer: %q", d.Data)
	}
	PutMessage(d)
}

func TestDecodeIntoRejectsShortAndHuge(t *testing.T) {
	d := GetMessage()
	defer PutMessage(d)
	if err := DecodeInto(d, make([]byte, HeaderSize-1)); err == nil {
		t.Error("short buffer accepted")
	}
	// A header claiming an over-limit payload via buffer length.
	if err := DecodeInto(d, make([]byte, HeaderSize+MaxDataLen+1)); err == nil {
		t.Error("oversized payload accepted")
	}
}

// Vectored read payloads round-trip: ranges out in order, Arg1 totals the
// word count.
func TestReadVRangesRoundTrip(t *testing.T) {
	m := GetMessage()
	defer PutMessage(m)
	m.Op = OpReadV
	type rng struct {
		addr  uint64
		count int
	}
	in := []rng{{100, 3}, {2000, 32}, {7, 1}}
	for _, r := range in {
		m.AppendRange(r.addr, r.count)
	}
	if m.Arg1 != 36 {
		t.Fatalf("Arg1 = %d, want 36", m.Arg1)
	}
	d := GetMessage()
	defer PutMessage(d)
	if err := DecodeInto(d, m.Encode()); err != nil {
		t.Fatal(err)
	}
	var out []rng
	if err := d.EachRange(func(addr uint64, count int) {
		out = append(out, rng{addr, count})
	}); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("%d ranges, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("range %d: %+v, want %+v", i, out[i], in[i])
		}
	}
	if err := d.EachRange(func(uint64, int) {}); err != nil {
		t.Fatal(err) // re-iteration must not consume
	}
}

func TestEachRangeRejectsRagged(t *testing.T) {
	m := GetMessage()
	defer PutMessage(m)
	m.AppendRange(1, 2)
	m.Data = m.Data[:len(m.Data)-1]
	if err := m.EachRange(func(uint64, int) {}); err == nil {
		t.Error("ragged range payload accepted")
	}
}

// Vectored write payloads round-trip: runs out in order with their words,
// Arg1 counts the runs, and the scratch passed to EachWriteRun is reused.
func TestWriteVRunsRoundTrip(t *testing.T) {
	m := GetMessage()
	defer PutMessage(m)
	m.Op = OpWriteV
	m.AppendWriteRun(50, []int64{1, 2, 3})
	m.AppendWriteRun(9000, []int64{-7})
	m.AppendWriteRun(128, []int64{10, 20, 30, 40})
	if m.Arg1 != 3 {
		t.Fatalf("Arg1 = %d, want 3", m.Arg1)
	}
	d := GetMessage()
	defer PutMessage(d)
	if err := DecodeInto(d, m.Encode()); err != nil {
		t.Fatal(err)
	}
	type run struct {
		addr  uint64
		words []int64
	}
	var out []run
	scratch, err := d.EachWriteRun(nil, func(addr uint64, words []int64) {
		cp := make([]int64, len(words))
		copy(cp, words)
		out = append(out, run{addr, cp})
	})
	if err != nil {
		t.Fatal(err)
	}
	if cap(scratch) < 4 {
		t.Errorf("scratch cap %d, want >= longest run", cap(scratch))
	}
	want := []run{{50, []int64{1, 2, 3}}, {9000, []int64{-7}}, {128, []int64{10, 20, 30, 40}}}
	if len(out) != len(want) {
		t.Fatalf("%d runs, want %d", len(out), len(want))
	}
	for i := range want {
		if out[i].addr != want[i].addr || len(out[i].words) != len(want[i].words) {
			t.Fatalf("run %d: %+v, want %+v", i, out[i], want[i])
		}
		for j := range want[i].words {
			if out[i].words[j] != want[i].words[j] {
				t.Errorf("run %d word %d: %d, want %d", i, j, out[i].words[j], want[i].words[j])
			}
		}
	}
}

func TestEachWriteRunRejectsTruncation(t *testing.T) {
	m := GetMessage()
	defer PutMessage(m)
	m.AppendWriteRun(4, []int64{1, 2})
	for cut := 1; cut < len(m.Data); cut++ {
		m2 := &Message{Data: m.Data[:len(m.Data)-cut]}
		if _, err := m2.EachWriteRun(nil, func(uint64, []int64) {}); err == nil {
			t.Errorf("truncation by %d bytes accepted", cut)
		}
	}
}

// Word/PutWord/WordsInto agree with the slice-based codecs.
func TestWordHelpers(t *testing.T) {
	m := GetMessage()
	defer PutMessage(m)
	m.PutWord(-12345)
	if m.PayloadWords() != 1 || m.Word(0) != -12345 {
		t.Fatalf("PutWord/Word mismatch: %v", m.Words())
	}
	m.PutWords([]int64{5, 6, 7})
	dst := make([]int64, 0, 8)
	dst = m.WordsInto(dst)
	if len(dst) != 3 || dst[0] != 5 || dst[2] != 7 {
		t.Fatalf("WordsInto = %v", dst)
	}
	m.ResetData()
	if m.Data != nil || m.PayloadWords() != 0 {
		t.Fatal("ResetData left payload")
	}
}

// Recycled messages must come back empty regardless of prior state.
func TestPutMessageResets(t *testing.T) {
	m := GetMessage()
	m.Op, m.Seq, m.Arg1 = OpCAS, 7, 8
	m.PutWords([]int64{1, 2, 3})
	PutMessage(m)
	// The pool may hand back any message; drain a few to likely see ours.
	for i := 0; i < 8; i++ {
		g := GetMessage()
		if g.Op != OpInvalid || g.Seq != 0 || g.Arg1 != 0 || g.Data != nil {
			t.Fatalf("pooled message not reset: %v", g)
		}
		PutMessage(g)
	}
}
