//go:build ignore

// Generates the committed seed corpora for the wire and tcpnet fuzz
// targets from real encoder output. Run from the repo root:
//
//	go run internal/wire/corpusgen.go
package main

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/wire"
)

func put(dir, name string, data []byte) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		panic(err)
	}
	body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
	if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
		panic(err)
	}
}

func frame(payload []byte) []byte {
	out := make([]byte, 4+len(payload))
	binary.LittleEndian.PutUint32(out, uint32(len(payload)))
	copy(out[4:], payload)
	return out
}

func main() {
	read := &wire.Message{Op: wire.OpRead, Src: 0, Dst: 1, Seq: 3, Addr: 16, Arg1: 4}
	wr := &wire.Message{Op: wire.OpWrite, Src: 1, Dst: 0, Seq: 9, Addr: 8}
	wr.PutWords([]int64{1, 2, 3})
	rv := &wire.Message{Op: wire.OpReadV, Src: 2, Dst: 0, Seq: 5}
	rv.AppendRange(8, 2)
	rv.AppendRange(512, 7)
	wv := &wire.Message{Op: wire.OpWriteV, Src: 3, Dst: 1, Seq: 11}
	wv.AppendWriteRun(8, []int64{-1, -2})
	wv.AppendWriteRun(1024, []int64{1 << 40})
	// The EachWriteRun count-overflow shape: one run header claiming 2^61
	// words (count*8 wraps negative as an int64).
	evil := &wire.Message{Op: wire.OpWriteV}
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[:], 8)
	binary.LittleEndian.PutUint64(hdr[8:], 1<<61)
	evil.Data = hdr[:]

	for dir, msgs := range map[string][]*wire.Message{
		"internal/wire/testdata/fuzz/FuzzDecode":     {read, wr, rv, wv, evil},
		"internal/wire/testdata/fuzz/FuzzDecodeInto": {read, wr, rv, wv, evil},
	} {
		for i, m := range msgs {
			put(dir, fmt.Sprintf("seed-%d", i), m.Encode())
		}
	}
	tdir := "internal/transport/tcpnet/testdata/fuzz/FuzzReadFrame"
	for i, m := range []*wire.Message{read, wr, rv, wv, evil} {
		put(tdir, fmt.Sprintf("seed-%d", i), frame(m.Encode()))
	}
	// Two adversarial streams: truncated mid-frame, and an oversized prefix.
	put(tdir, "seed-truncated", frame(wr.Encode())[:20])
	put(tdir, "seed-bad-size", []byte{0xff, 0xff, 0xff, 0x7f})
}
