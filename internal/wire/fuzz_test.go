package wire

import (
	"bytes"
	"testing"
)

// exercise drives every payload accessor a kernel may call on a decoded
// message of unknown shape. None of them may panic on untrusted bytes: a
// malformed payload must surface as an error (counted as a CorruptDrop by
// the kernel), never take the process down.
func exercise(t *testing.T, m *Message) {
	t.Helper()
	_ = m.PayloadWords()
	if len(m.Data)%8 == 0 {
		// WordsInto's whole-words precondition holds; it must not panic.
		m.WordsInto(nil)
	}
	_ = m.EachRange(func(addr uint64, count int) {})
	if _, err := m.EachWriteRun(nil, func(addr uint64, words []int64) {}); err == nil {
		// A second pass with reused scratch must agree.
		if _, err := m.EachWriteRun(make([]int64, 1), func(addr uint64, words []int64) {}); err != nil {
			t.Fatalf("EachWriteRun accepted payload once, rejected it with scratch: %v", err)
		}
	}
}

func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, HeaderSize-1))
	f.Add(make([]byte, HeaderSize))
	m := &Message{Op: OpWrite, Src: 1, Dst: 2, Seq: 7, Addr: 99}
	m.PutWord(42)
	f.Add(m.Encode())
	f.Fuzz(func(t *testing.T, buf []byte) {
		m, err := Decode(buf)
		if err != nil {
			return
		}
		exercise(t, m)
		// Round-trip: re-encoding a decoded message and decoding it again
		// must reproduce the same header and payload (the two reserved
		// header bytes are not carried, so compare fields, not raw bytes).
		m2, err := Decode(m.Encode())
		if err != nil {
			t.Fatalf("re-decoding a re-encoded message: %v", err)
		}
		if m.Op != m2.Op || m.Flags != m2.Flags || m.Src != m2.Src || m.Dst != m2.Dst ||
			m.Tag != m2.Tag || m.Seq != m2.Seq || m.Addr != m2.Addr ||
			m.Arg1 != m2.Arg1 || m.Arg2 != m2.Arg2 || !bytes.Equal(m.Data, m2.Data) {
			t.Fatalf("round trip changed the message:\n  %+v\n  %+v", m, m2)
		}
	})
}

func FuzzDecodeInto(f *testing.F) {
	f.Add(make([]byte, HeaderSize))
	m := &Message{Op: OpWriteV}
	m.AppendWriteRun(8, []int64{1, 2, 3})
	m.AppendWriteRun(64, []int64{4})
	f.Add(m.Encode())
	f.Fuzz(func(t *testing.T, buf []byte) {
		m := GetMessage()
		defer PutMessage(m)
		err := DecodeInto(m, buf)
		ma, erra := Decode(buf)
		if (err == nil) != (erra == nil) {
			t.Fatalf("DecodeInto err=%v but Decode err=%v", err, erra)
		}
		if err != nil {
			return
		}
		// DecodeInto must produce exactly what Decode does, with the payload
		// copied out of buf rather than aliasing it.
		if m.Op != ma.Op || m.Seq != ma.Seq || m.Addr != ma.Addr || !bytes.Equal(m.Data, ma.Data) {
			t.Fatalf("DecodeInto disagrees with Decode:\n  %+v\n  %+v", m, ma)
		}
		if len(buf) > HeaderSize {
			buf[HeaderSize] ^= 0xff
			if bytes.Equal(m.Data, buf[HeaderSize:]) && len(m.Data) > 0 {
				t.Fatal("DecodeInto payload aliases the caller's buffer")
			}
		}
		exercise(t, m)
	})
}
