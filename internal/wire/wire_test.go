package wire

import (
	"bytes"
	"testing"
	"testing/quick"
)

func sampleMessage() *Message {
	return &Message{
		Op: OpRead, Src: 3, Dst: 7, Tag: -2, Seq: 12345,
		Addr: 0xdeadbeef, Arg1: -99, Arg2: 1 << 40,
		Data: []byte{1, 2, 3, 4},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := sampleMessage()
	got, err := Decode(m.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Op != m.Op || got.Src != m.Src || got.Dst != m.Dst || got.Tag != m.Tag ||
		got.Seq != m.Seq || got.Addr != m.Addr || got.Arg1 != m.Arg1 || got.Arg2 != m.Arg2 {
		t.Fatalf("header mismatch: %v vs %v", got, m)
	}
	if !bytes.Equal(got.Data, m.Data) {
		t.Fatalf("payload mismatch: %v vs %v", got.Data, m.Data)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(op uint8, src, dst, tag int32, seq, addr uint64, a1, a2 int64, data []byte) bool {
		m := &Message{Op: Op(op), Src: src, Dst: dst, Tag: tag, Seq: seq,
			Addr: addr, Arg1: a1, Arg2: a2, Data: data}
		got, err := Decode(m.Encode())
		if err != nil {
			return false
		}
		if got.Op != m.Op || got.Src != src || got.Dst != dst || got.Tag != tag ||
			got.Seq != seq || got.Addr != addr || got.Arg1 != a1 || got.Arg2 != a2 {
			return false
		}
		if len(data) == 0 {
			return len(got.Data) == 0
		}
		return bytes.Equal(got.Data, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWireSizeMatchesEncoding(t *testing.T) {
	m := sampleMessage()
	if got := len(m.Encode()); got != m.WireSize() {
		t.Fatalf("encoded %d bytes, WireSize says %d", got, m.WireSize())
	}
	m.Data = nil
	if m.WireSize() != HeaderSize {
		t.Fatalf("empty message WireSize = %d, want %d", m.WireSize(), HeaderSize)
	}
}

func TestDecodeShortBuffer(t *testing.T) {
	if _, err := Decode(make([]byte, HeaderSize-1)); err == nil {
		t.Fatal("expected error for short buffer")
	}
}

func TestAppendReusesBuffer(t *testing.T) {
	m := sampleMessage()
	buf := make([]byte, 0, 256)
	out := m.Append(buf)
	if len(out) != m.WireSize() {
		t.Fatalf("appended %d bytes, want %d", len(out), m.WireSize())
	}
	out2 := m.Append(out)
	if len(out2) != 2*m.WireSize() {
		t.Fatal("second append did not extend")
	}
	if got, err := Decode(out2[m.WireSize():]); err != nil || got.Seq != m.Seq {
		t.Fatalf("second copy corrupt: %v %v", got, err)
	}
}

func TestFlagsRoundTrip(t *testing.T) {
	m := sampleMessage()
	m.Flags = FlagRetry
	got, err := Decode(m.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Flags != FlagRetry {
		t.Fatalf("Flags = %#x, want %#x", got.Flags, FlagRetry)
	}
	m.Flags = 0
	if got, err = Decode(m.Encode()); err != nil || got.Flags != 0 {
		t.Fatalf("zero Flags not preserved: %#x, %v", got.Flags, err)
	}
}

func TestWordsRoundTrip(t *testing.T) {
	f := func(ws []int64) bool {
		m := &Message{Op: OpReadResp}
		m.PutWords(ws)
		got := m.Words()
		if len(got) != len(ws) {
			return false
		}
		for i := range ws {
			if got[i] != ws[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWordsPanicsOnRaggedPayload(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-word payload")
		}
	}()
	m := &Message{Data: []byte{1, 2, 3}}
	m.Words()
}

func TestIsResponseClassification(t *testing.T) {
	reqResp := map[Op]Op{
		OpRead:         OpReadResp,
		OpWrite:        OpWriteAck,
		OpFetchAdd:     OpFetchAddResp,
		OpCAS:          OpCASResp,
		OpInvalidate:   OpInvAck,
		OpLockAcquire:  OpLockGrant,
		OpProcRegister: OpProcRegResp,
		OpProcExit:     OpProcExitAck,
		OpProcList:     OpProcListResp,
		OpHello:        OpWelcome,
		OpPing:         OpPong,
	}
	for req, resp := range reqResp {
		if req.IsResponse() {
			t.Fatalf("%v misclassified as response", req)
		}
		if !resp.IsResponse() {
			t.Fatalf("%v not classified as response", resp)
		}
	}
	if OpUserMsg.IsResponse() {
		t.Fatal("user messages are not responses")
	}
}

func TestOpStringsAreNamed(t *testing.T) {
	for op := OpRead; op < numOps; op++ {
		if s := op.String(); s == "" || s[0] == 'O' && s[1] == 'p' && s[2] == '(' {
			t.Fatalf("op %d has no name", op)
		}
	}
	if Op(200).String() != "Op(200)" {
		t.Fatal("unknown op should fall back to numeric form")
	}
}

func TestDecodeRejectsHugePayloadClaim(t *testing.T) {
	buf := make([]byte, HeaderSize+MaxDataLen+1)
	if _, err := Decode(buf); err == nil {
		t.Fatal("expected error for oversized payload")
	}
}

func BenchmarkEncode(b *testing.B) {
	m := sampleMessage()
	m.Data = make([]byte, 1024)
	buf := make([]byte, 0, m.WireSize())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = m.Append(buf[:0])
	}
}

func BenchmarkDecode(b *testing.B) {
	m := sampleMessage()
	m.Data = make([]byte, 1024)
	enc := m.Encode()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}
