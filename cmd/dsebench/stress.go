package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/check/stress"
	"repro/internal/sim"
)

// runStress sweeps the consistency stress matrix (PEs x loss x caching,
// plus a peer-kill schedule) for one base seed, printing per-configuration
// results and exiting 1 on any violation. Every configuration is a pure
// function of the seed: re-running with the printed seed replays the
// failing history bit-for-bit.
func runStress(seed uint64, quick bool) {
	pes := []int{2, 4, 8}
	losses := []float64{0, 0.05, 0.15}
	ops := 1000
	if quick {
		pes = []int{2, 4}
		losses = []float64{0, 0.15}
		ops = 150
	}
	var configs []stress.Options
	for _, np := range pes {
		for _, loss := range losses {
			for _, caching := range []bool{false, true} {
				configs = append(configs, stress.Options{
					Seed: seed, NumPE: np, OpsPerPE: ops,
					Caching: caching, Loss: loss,
					Jitter: 200 * sim.Microsecond,
				})
			}
		}
	}
	// One peer-kill schedule rides along at the end of the matrix.
	configs = append(configs, stress.Options{
		Seed: seed, NumPE: 4, OpsPerPE: ops, Loss: 0.02,
		KillPE: 2, KillAt: 2 * sim.Second,
	})
	// Sharded-kernel legs: the harshest lossy-caching corner and the
	// peer-kill schedule again at 2 and 8 shards. Under the simulated
	// transport sharding dispatches inline, so these must match the
	// unsharded histories op for op — any divergence is a routing bug.
	for _, shards := range []int{2, 8} {
		configs = append(configs,
			stress.Options{
				Seed: seed, NumPE: 4, OpsPerPE: ops,
				Caching: true, Loss: 0.15,
				Jitter: 200 * sim.Microsecond, Shards: shards,
			},
			stress.Options{
				Seed: seed, NumPE: 4, OpsPerPE: ops, Loss: 0.02,
				KillPE: 2, KillAt: 2 * sim.Second, Shards: shards,
			})
	}
	// One-sided legs: direct-read window plus write rings forced on, lossy
	// and with an early kill (rings-on schedules run fast, so the kill must
	// sit well inside the run to fire).
	for _, shards := range []int{2, 8} {
		configs = append(configs,
			stress.Options{
				Seed: seed, NumPE: 4, OpsPerPE: ops, Loss: 0.05,
				Shards: shards, DirectReads: 1, Rings: 1,
			},
			stress.Options{
				Seed: seed, NumPE: 4, OpsPerPE: ops, Loss: 0.02,
				KillPE: 2, KillAt: 100 * sim.Millisecond,
				Shards: shards, DirectReads: 1, Rings: 1,
			})
	}
	// Mixed consistency-tier legs: strong, release and lease allocations in
	// one run, checked by the per-mode rules — fault-free, through the lossy
	// caching corner, over the one-sided window/ring paths, and with a
	// mid-run station kill discarding unflushed WC words and stranding held
	// leases.
	configs = append(configs,
		stress.Options{
			Seed: seed, NumPE: 4, OpsPerPE: ops, Modes: true,
		},
		stress.Options{
			Seed: seed, NumPE: 4, OpsPerPE: ops, Modes: true,
			Caching: true, Loss: 0.15, Jitter: 200 * sim.Microsecond,
		},
		stress.Options{
			Seed: seed, NumPE: 4, OpsPerPE: ops, Modes: true,
			Shards: 2, DirectReads: 1, Rings: 1, Loss: 0.05,
		},
		stress.Options{
			Seed: seed, NumPE: 4, OpsPerPE: ops, Modes: true, Loss: 0.02,
			KillPE: 2, KillAt: 2 * sim.Second,
		})

	start := time.Now()
	totalOps, failures := 0, 0
	for _, o := range configs {
		res, err := stress.Run(o)
		if err != nil {
			fatalf("stress (%v): %v", o, err)
		}
		status := "ok"
		if res.Err != nil {
			status = fmt.Sprintf("PE ERROR: %v", res.Err)
			failures++
		}
		if !res.Report.OK() {
			status = fmt.Sprintf("%d VIOLATIONS", len(res.Report.Violations))
			failures++
		}
		fmt.Printf("%-60s %7d ops  %s\n", o.String(), res.History.Len(), status)
		if !res.Report.OK() {
			fmt.Print(res.Report)
		}
		totalOps += res.History.Len()
	}
	fmt.Printf("checked %d operations across %d configurations in %v\n",
		totalOps, len(configs), time.Since(start).Round(time.Millisecond))
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "dsebench: stress FAILED (%d bad configurations); replay with -stress -seed %d\n", failures, seed)
		os.Exit(1)
	}
}
