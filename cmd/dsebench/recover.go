package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/check/stress"
	"repro/internal/sim"
)

// runRecover sweeps seeded kill-and-recover schedules: each configuration
// checkpoints periodically, loses a PE abruptly mid-run, restarts from the
// last snapshot through the recovery coordinator, and must COMPLETE with a
// checker-clean history. It prints the recovery metrics (snapshot size,
// detection time, rolled-back ops, rerun time) and exits 1 on any
// violation, PE error, or schedule whose kill failed to trigger a recovery.
// Like -stress, every configuration replays bit-for-bit from its seed.
func runRecover(seed uint64, quick bool) {
	ops, killAt := 1000, 1500*sim.Millisecond
	if quick {
		ops, killAt = 300, 500*sim.Millisecond
	}
	configs := []stress.Options{
		{Seed: seed, NumPE: 4, OpsPerPE: ops, Recover: true, CkptEvery: 32,
			KillPE: 2, KillAt: killAt},
		{Seed: seed + 1, NumPE: 4, OpsPerPE: ops, Caching: true, Recover: true, CkptEvery: 32,
			KillPE: 1, KillAt: killAt},
	}
	if !quick {
		// 8 PEs pace slower per op: give the first checkpoint room to
		// commit before the kill lands.
		configs = append(configs, stress.Options{
			Seed: seed + 2, NumPE: 8, OpsPerPE: ops, Recover: true, CkptEvery: 32,
			KillPE: 5, KillAt: 2 * killAt,
		})
	}

	start := time.Now()
	failures := 0
	for _, o := range configs {
		res, err := stress.Run(o)
		if err != nil {
			fatalf("recover (%v): %v", o, err)
		}
		status := "recovered ok"
		switch {
		case res.Err != nil:
			status = fmt.Sprintf("PE ERROR: %v", res.Err)
			failures++
		case !res.Report.OK():
			status = fmt.Sprintf("%d VIOLATIONS", len(res.Report.Violations))
			failures++
		case res.Recovery == nil || !res.Recovery.Recovered():
			status = "NO RECOVERY (kill never fired?)"
			failures++
		}
		fmt.Printf("%-72s %7d ops  %s\n", o.String(), res.History.Len(), status)
		if !res.Report.OK() {
			fmt.Print(res.Report)
		}
		if res.Recovery != nil {
			for _, ev := range res.Recovery.Recoveries {
				fmt.Printf("    dead=%v coordinator=%d gen=%d epoch=%d detected@%v rollback=%d ops; rerun finished in %v\n",
					ev.DeadPEs, ev.Coordinator, ev.Gen, ev.Epoch, ev.DetectedAt, ev.RollbackOps, res.Elapsed)
			}
			fmt.Printf("    snapshot bytes=%d attempts=%d\n", res.SnapshotBytes, res.Recovery.Attempts)
		}
	}
	fmt.Printf("recovered %d configurations in %v\n", len(configs), time.Since(start).Round(time.Millisecond))
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "dsebench: recover FAILED (%d bad configurations); replay with -recover -seed %d\n", failures, seed)
		os.Exit(1)
	}
}
