package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/check/stress"
	"repro/internal/sim"
)

// runMembership sweeps the elastic-membership stress schedules for one base
// seed: live joins, graceful leaves and block re-homings overlapping the
// randomized workload, fault-free and with a station kill landing mid-
// migration. Every configuration must produce a violation-free history AND
// at least three membership events actually fired — a run where the
// schedule silently never triggered would prove nothing.
func runMembership(seed uint64, quick bool) {
	ops := 800
	if quick {
		ops = 200
	}
	mig := ops / 8
	join, leave := ops/4, ops/2

	configs := []stress.Options{
		// Full churn, fault-free: join + leave + periodic re-homings over
		// the complete op mix (blocks, gathers, locks, barriers).
		{Seed: seed, NumPE: 5, OpsPerPE: ops,
			Latent: 1, JoinAtOp: join, LeavePE: 2, LeaveAtOp: leave, MigrateEvery: mig},
		// The same churn through sharded kernels: re-homing must fence every
		// shard, not just the serial serve loop.
		{Seed: seed, NumPE: 5, OpsPerPE: ops, Shards: 2,
			Latent: 1, JoinAtOp: join, LeavePE: 2, LeaveAtOp: leave, MigrateEvery: mig},
		{Seed: seed, NumPE: 5, OpsPerPE: ops, Shards: 8,
			Latent: 1, JoinAtOp: join, LeavePE: 2, LeaveAtOp: leave, MigrateEvery: mig},
		// Churn under frame loss: handoff NACKs, redirects and retries all
		// cross a lossy medium.
		{Seed: seed, NumPE: 4, OpsPerPE: ops, Loss: 0.05,
			Latent: 1, JoinAtOp: join, MigrateEvery: mig},
		// One-sided legs: the direct-read window and write rings must
		// rebind when their blocks change home.
		{Seed: seed, NumPE: 4, OpsPerPE: ops, Shards: 2, DirectReads: 1, Rings: 1,
			Latent: 1, JoinAtOp: join, LeavePE: 2, LeaveAtOp: leave, MigrateEvery: mig},
		// A station kill overlapping the migration stream: handoffs stranded
		// by the dead peer may fail, but no acknowledged write may be lost
		// or duplicated in the surviving history.
		{Seed: seed, NumPE: 5, OpsPerPE: ops, Loss: 0.02,
			KillPE: 3, KillAt: 2 * sim.Second,
			Latent: 1, JoinAtOp: join, MigrateEvery: mig},
		// Mixed consistency tiers through the full churn: half the re-homings
		// target the release region, so handoffs overlap unflushed WC buffers
		// (the membership fence must publish them before escrow) and joins
		// and leaves drop held leases cluster-wide.
		{Seed: seed, NumPE: 5, OpsPerPE: ops, Modes: true,
			Latent: 1, JoinAtOp: join, LeavePE: 2, LeaveAtOp: leave, MigrateEvery: mig},
		// The same mixed-tier churn over the one-sided window/ring paths.
		{Seed: seed, NumPE: 5, OpsPerPE: ops, Modes: true, Shards: 2, DirectReads: 1, Rings: 1,
			Latent: 1, JoinAtOp: join, LeavePE: 2, LeaveAtOp: leave, MigrateEvery: mig},
	}

	start := time.Now()
	totalOps, totalEvents, failures := 0, uint64(0), 0
	for _, o := range configs {
		res, err := stress.Run(o)
		if err != nil {
			fatalf("membership (%v): %v", o, err)
		}
		events := res.Joins + res.Leaves + res.Migrations
		status := "ok"
		if res.Err != nil {
			status = fmt.Sprintf("PE ERROR: %v", res.Err)
			failures++
		}
		if !res.Report.OK() {
			status = fmt.Sprintf("%d VIOLATIONS", len(res.Report.Violations))
			failures++
		}
		if events < 3 {
			status = fmt.Sprintf("only %d membership events (want >= 3)", events)
			failures++
		}
		fmt.Printf("%-70s %7d ops  %2d joins %2d leaves %3d migrations %4d blocks  %s\n",
			o.String(), res.History.Len(), res.Joins, res.Leaves, res.Migrations,
			res.MigratedBlocks, status)
		if !res.Report.OK() {
			fmt.Print(res.Report)
		}
		totalOps += res.History.Len()
		totalEvents += events
	}
	fmt.Printf("checked %d operations, %d membership events across %d configurations in %v\n",
		totalOps, totalEvents, len(configs), time.Since(start).Round(time.Millisecond))
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "dsebench: membership FAILED (%d bad configurations); replay with -membership -seed %d\n", failures, seed)
		os.Exit(1)
	}
}
