// Command dsebench regenerates the paper's evaluation tables and figures
// on the simulated cluster.
//
// Usage:
//
//	dsebench -table 1            # print paper Table 1 (environments)
//	dsebench -table 2            # print paper Table 2 (virtual cluster)
//	dsebench -fig 5              # regenerate one figure (4..21)
//	dsebench -all                # regenerate every table and figure
//	dsebench -all -quick         # smaller parameter ranges (fast)
//
// Figures print as aligned tables: one row per x value, one column per
// series, exactly the rows/series the paper plots.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/platform"
	"repro/internal/trace"
)

func main() {
	var (
		fig      = flag.Int("fig", 0, "regenerate one paper figure (4..21)")
		table    = flag.Int("table", 0, "print a paper table (1 or 2)")
		all      = flag.Bool("all", false, "regenerate every table and figure")
		ablation = flag.Bool("ablation", false, "run the design-choice ablation suite")
		msgstats = flag.Bool("msgstats", false, "print per-op message traffic for the reference workloads")
		plot     = flag.Bool("plot", false, "also render figures as ASCII charts")
		quick    = flag.Bool("quick", false, "use reduced parameter ranges")
		maxPE    = flag.Int("maxpe", 0, "override the processor sweep upper bound")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		csvDir   = flag.String("csv", "", "also save each regenerated figure as CSV into this directory")
	)
	flag.Parse()
	plotFigures = *plot
	csvOutDir = *csvDir

	sc := bench.FullScale()
	if *quick {
		sc = bench.QuickScale()
	}
	if *maxPE > 0 {
		sc.MaxPE = *maxPE
	}
	sc.Seed = *seed

	switch {
	case *table == 1:
		bench.Table1().Fprint(os.Stdout)
	case *table == 2:
		bench.Table2(2 * platform.PhysicalMachines).Fprint(os.Stdout)
	case *table != 0:
		fatalf("no table %d in the paper (1 or 2)", *table)
	case *msgstats:
		npe := 4
		if *maxPE > 0 {
			npe = *maxPE
		}
		tables, err := bench.MessageProfile(platform.SparcSunOS, npe, sc.Seed)
		if err != nil {
			fatalf("message profile: %v", err)
		}
		for _, tb := range tables {
			tb.Fprint(os.Stdout)
			fmt.Println()
		}
	case *ablation:
		figs, err := bench.Ablations(sc.MaxPE, sc.Seed)
		if err != nil {
			fatalf("ablations: %v", err)
		}
		for _, f := range figs {
			f.Table().Fprint(os.Stdout)
			maybePlot(f)
			maybeCSV(f)
			fmt.Println()
		}
	case *fig != 0:
		printFigure(*fig, sc)
	case *all:
		bench.Table1().Fprint(os.Stdout)
		fmt.Println()
		bench.Table2(2 * platform.PhysicalMachines).Fprint(os.Stdout)
		fmt.Println()
		for _, n := range bench.AllFigureNumbers() {
			printFigure(n, sc)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// plotFigures and csvOutDir mirror the -plot and -csv flags.
var (
	plotFigures bool
	csvOutDir   string
)

func printFigure(n int, sc bench.Scale) {
	start := time.Now()
	f, err := bench.FigureByNumber(n, sc)
	if err != nil {
		fatalf("figure %d: %v", n, err)
	}
	f.Table().Fprint(os.Stdout)
	maybePlot(f)
	maybeCSV(f)
	fmt.Printf("(x: %s, y: %s; regenerated in %v)\n\n", f.XLabel, f.YLabel, time.Since(start).Round(time.Millisecond))
}

func maybePlot(f *bench.Figure) {
	if !plotFigures {
		return
	}
	fmt.Println()
	trace.Plot(os.Stdout, "", f.Series, 60, 16)
}

func maybeCSV(f *bench.Figure) {
	if csvOutDir == "" {
		return
	}
	path, err := f.SaveCSV(csvOutDir)
	if err != nil {
		fatalf("saving CSV: %v", err)
	}
	fmt.Printf("(saved %s)\n", path)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dsebench: "+format+"\n", args...)
	os.Exit(1)
}
