// Command dsebench regenerates the paper's evaluation tables and figures
// on the simulated cluster.
//
// Usage:
//
//	dsebench -table 1            # print paper Table 1 (environments)
//	dsebench -table 2            # print paper Table 2 (virtual cluster)
//	dsebench -fig 5              # regenerate one figure (4..21)
//	dsebench -all                # regenerate every table and figure
//	dsebench -all -quick         # smaller parameter ranges (fast)
//	dsebench -quick -json out.json            # machine-readable metrics snapshot
//	dsebench -quick -json out.json -baseline BENCH_baseline.json
//	                             # ...and fail (exit 1) on >10% regressions
//	dsebench -trace out.trace.json            # traced gauss run, Chrome trace_event
//	dsebench -stress -seed 7     # seeded consistency stress matrix (exit 1 on violation)
//	dsebench -recover -seed 7    # seeded kill-and-recover schedules (exit 1 on failure)
//	dsebench -saturate           # remote-GM ops/sec into one home kernel vs shard count
//	dsebench -modes              # consistency-tier ablation: gauss msgs under strong/release/lease
//	dsebench -sched              # multi-job scheduler load test: burst + Poisson job streams
//	dsebench -saturate -quick -json out.json  # ...included in the snapshot
//	dsebench -sched -quick -json out.json     # ...scheduler legs included too
//
// Figures print as aligned tables: one row per x value, one column per
// series, exactly the rows/series the paper plots.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/platform"
	"repro/internal/trace"
)

func main() {
	var (
		fig      = flag.Int("fig", 0, "regenerate one paper figure (4..21)")
		table    = flag.Int("table", 0, "print a paper table (1 or 2)")
		all      = flag.Bool("all", false, "regenerate every table and figure")
		ablation = flag.Bool("ablation", false, "run the design-choice ablation suite")
		msgstats = flag.Bool("msgstats", false, "print per-op message traffic for the reference workloads")
		latency  = flag.Bool("latency", false, "print per-op latency distributions for the reference workloads")
		plot     = flag.Bool("plot", false, "also render figures as ASCII charts")
		quick    = flag.Bool("quick", false, "use reduced parameter ranges")
		maxPE    = flag.Int("maxpe", 0, "override the processor sweep upper bound")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		csvDir   = flag.String("csv", "", "also save each regenerated figure as CSV into this directory")
		jsonOut  = flag.String("json", "", "write a machine-readable metrics snapshot to this file")
		baseline = flag.String("baseline", "", "compare the snapshot against this baseline; exit 1 on regression")
		traceOut = flag.String("trace", "", "run gauss p=4 with span tracing and write Chrome trace_event JSON here")
		stressF  = flag.Bool("stress", false, "run the seeded consistency stress matrix; -seed selects the schedule")
		recoverF = flag.Bool("recover", false, "run seeded kill-and-recover schedules (checkpoint/restart); -seed selects the schedule")
		memberF  = flag.Bool("membership", false, "run seeded live join/leave/re-home schedules (elastic membership); -seed selects the schedule")
		saturate = flag.Bool("saturate", false, "measure remote-GM ops/sec into one home kernel across PE and shard counts (wall clock; with -json, adds the sweep to the snapshot)")
		modesF   = flag.Bool("modes", false, "print the consistency-tier ablation: gauss message counts under strong, release and lease modes")
		schedF   = flag.Bool("sched", false, "run the multi-job scheduler load test: thousands of queued jobs, then Poisson arrivals (wall clock; with -json, adds the legs to the snapshot)")
	)
	flag.Parse()
	plotFigures = *plot
	csvOutDir = *csvDir

	sc := bench.FullScale()
	if *quick {
		sc = bench.QuickScale()
	}
	if *maxPE > 0 {
		sc.MaxPE = *maxPE
	}
	sc.Seed = *seed

	switch {
	case *stressF:
		runStress(*seed, *quick)
	case *recoverF:
		runRecover(*seed, *quick)
	case *memberF:
		runMembership(*seed, *quick)
	case *jsonOut != "":
		scaleName := "full"
		if *quick {
			scaleName = "quick"
		}
		writeSnapshot(*jsonOut, *baseline, sc, scaleName, *saturate, *schedF)
	case *schedF:
		start := time.Now()
		pts, err := bench.SchedSweep(*quick, sc.Seed)
		if err != nil {
			fatalf("scheduler load test: %v", err)
		}
		bench.SchedTable(pts).Fprint(os.Stdout)
		fmt.Printf("(wall clock; regenerated in %v)\n", time.Since(start).Round(time.Millisecond))
	case *saturate:
		start := time.Now()
		pts, err := bench.SaturationSweep(*quick)
		if err != nil {
			fatalf("saturation sweep: %v", err)
		}
		bench.SaturationTable(pts).Fprint(os.Stdout)
		fmt.Printf("(wall clock; regenerated in %v)\n", time.Since(start).Round(time.Millisecond))
	case *modesF:
		start := time.Now()
		rows, err := bench.ConsistencyTierProfile(platform.SparcSunOS, sc.Seed)
		if err != nil {
			fatalf("consistency tiers: %v", err)
		}
		bench.TierTable(rows).Fprint(os.Stdout)
		fmt.Printf("(regenerated in %v)\n", time.Since(start).Round(time.Millisecond))
	case *traceOut != "":
		writeTrace(*traceOut, sc)
	case *table == 1:
		bench.Table1().Fprint(os.Stdout)
	case *table == 2:
		bench.Table2(2 * platform.PhysicalMachines).Fprint(os.Stdout)
	case *table != 0:
		fatalf("no table %d in the paper (1 or 2)", *table)
	case *msgstats:
		npe := 4
		if *maxPE > 0 {
			npe = *maxPE
		}
		tables, err := bench.MessageProfile(platform.SparcSunOS, npe, sc.Seed)
		if err != nil {
			fatalf("message profile: %v", err)
		}
		for _, tb := range tables {
			tb.Fprint(os.Stdout)
			fmt.Println()
		}
	case *latency:
		tables, err := bench.LatencyTables(platform.SparcSunOS, sc)
		if err != nil {
			fatalf("latency tables: %v", err)
		}
		for _, tb := range tables {
			tb.Fprint(os.Stdout)
			fmt.Println()
		}
	case *ablation:
		figs, err := bench.Ablations(sc.MaxPE, sc.Seed)
		if err != nil {
			fatalf("ablations: %v", err)
		}
		for _, f := range figs {
			f.Table().Fprint(os.Stdout)
			maybePlot(f)
			maybeCSV(f)
			fmt.Println()
		}
	case *fig != 0:
		printFigure(*fig, sc)
	case *all:
		bench.Table1().Fprint(os.Stdout)
		fmt.Println()
		bench.Table2(2 * platform.PhysicalMachines).Fprint(os.Stdout)
		fmt.Println()
		for _, n := range bench.AllFigureNumbers() {
			printFigure(n, sc)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// plotFigures and csvOutDir mirror the -plot and -csv flags.
var (
	plotFigures bool
	csvOutDir   string
)

func printFigure(n int, sc bench.Scale) {
	start := time.Now()
	f, err := bench.FigureByNumber(n, sc)
	if err != nil {
		fatalf("figure %d: %v", n, err)
	}
	f.Table().Fprint(os.Stdout)
	maybePlot(f)
	maybeCSV(f)
	fmt.Printf("(x: %s, y: %s; regenerated in %v)\n\n", f.XLabel, f.YLabel, time.Since(start).Round(time.Millisecond))
}

func maybePlot(f *bench.Figure) {
	if !plotFigures {
		return
	}
	fmt.Println()
	trace.Plot(os.Stdout, "", f.Series, 60, 16)
}

func maybeCSV(f *bench.Figure) {
	if csvOutDir == "" {
		return
	}
	path, err := f.SaveCSV(csvOutDir)
	if err != nil {
		fatalf("saving CSV: %v", err)
	}
	fmt.Printf("(saved %s)\n", path)
}

// writeSnapshot builds the metrics snapshot, saves it, and (when a baseline
// is given) gates on regressions: the CI benchmark-regression pipeline.
func writeSnapshot(path, baselinePath string, sc bench.Scale, scaleName string, saturate, sched bool) {
	start := time.Now()
	snap, err := bench.BuildSnapshot(platform.SparcSunOS, sc, scaleName)
	if err != nil {
		fatalf("building snapshot: %v", err)
	}
	if saturate {
		pts, err := bench.SaturationSweep(scaleName == "quick")
		if err != nil {
			fatalf("saturation sweep: %v", err)
		}
		snap.Saturation = pts
	}
	if sched {
		pts, err := bench.SchedSweep(scaleName == "quick", sc.Seed)
		if err != nil {
			fatalf("scheduler load test: %v", err)
		}
		snap.Sched = pts
	}
	if err := snap.SaveJSON(path); err != nil {
		fatalf("saving snapshot: %v", err)
	}
	fmt.Printf("wrote %s (%d workloads, %v)\n", path, len(snap.Workloads), time.Since(start).Round(time.Millisecond))
	if baselinePath == "" {
		return
	}
	base, err := bench.LoadSnapshot(baselinePath)
	if err != nil {
		fatalf("loading baseline: %v", err)
	}
	regs := bench.Compare(base, snap)
	if len(regs) == 0 {
		fmt.Printf("no regressions vs %s\n", baselinePath)
		return
	}
	fmt.Fprintf(os.Stderr, "dsebench: %d regression(s) vs %s:\n", len(regs), baselinePath)
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "  %s\n", r)
	}
	os.Exit(1)
}

// writeTrace runs a traced gauss p=4 and exports the Chrome trace.
func writeTrace(path string, sc bench.Scale) {
	n := 120
	if len(sc.GaussNs) > 1 {
		n = sc.GaussNs[1]
	}
	f, err := os.Create(path)
	if err != nil {
		fatalf("creating trace file: %v", err)
	}
	res, err := bench.TraceGauss(platform.SparcSunOS, n, 4, sc.Seed, f)
	if err != nil {
		f.Close()
		fatalf("traced run: %v", err)
	}
	if err := f.Close(); err != nil {
		fatalf("closing trace file: %v", err)
	}
	fmt.Printf("wrote %s (%d spans, gauss N=%d p=4, elapsed %v)\n", path, len(res.Spans), n, res.Elapsed)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dsebench: "+format+"\n", args...)
	os.Exit(1)
}
