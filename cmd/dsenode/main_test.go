package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// freeAddrs reserves n loopback ports and releases them for the daemons.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// TestMultiProcessCluster builds the dsenode binary and runs a real
// three-OS-process DSE cluster over TCP — the full distributed deployment,
// exercised end to end.
func TestMultiProcessCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and spawns processes")
	}
	bin := filepath.Join(t.TempDir(), "dsenode")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building dsenode: %v", err)
	}

	addrs := freeAddrs(t, 3)
	joined := strings.Join(addrs, ",")
	outputs := make([]string, 3)
	errs := make([]error, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			cmd := exec.Command(bin,
				"-id", fmt.Sprint(i),
				"-addrs", joined,
				"-app", "knight", "-jobs", "8")
			out, err := cmd.CombinedOutput()
			outputs[i] = string(out)
			errs[i] = err
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("multi-process cluster did not finish")
	}
	for i := 0; i < 3; i++ {
		if errs[i] != nil {
			t.Fatalf("node %d failed: %v\n%s", i, errs[i], outputs[i])
		}
		if !strings.Contains(outputs[i], "total 304 tours") {
			t.Fatalf("node %d output missing tour count:\n%s", i, outputs[i])
		}
		if !strings.Contains(outputs[i], "done") {
			t.Fatalf("node %d did not shut down cleanly:\n%s", i, outputs[i])
		}
	}
}

// TestMetricsEndpoint spawns a two-process cluster with the debug server
// enabled on node 0 and scrapes /metrics while the node lingers after the
// run: the live-observability smoke test.
func TestMetricsEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and spawns processes")
	}
	bin := filepath.Join(t.TempDir(), "dsenode")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building dsenode: %v", err)
	}

	addrs := freeAddrs(t, 3)
	joined := strings.Join(addrs[:2], ",")
	debugAddr := addrs[2]
	outputs := make([]string, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			args := []string{"-id", fmt.Sprint(i), "-addrs", joined, "-app", "knight", "-jobs", "4"}
			if i == 0 {
				args = append(args, "-debug-addr", debugAddr, "-debug-linger", "15s")
			}
			out, err := exec.Command(bin, args...).CombinedOutput()
			outputs[i] = string(out)
			errs[i] = err
		}()
	}

	// Poll /metrics until the node reports the run done (the linger window
	// keeps the server up for us), then check the document.
	var doc struct {
		SchemaVersion int    `json:"schema_version"`
		Node          int    `json:"node"`
		NumPE         int    `json:"num_pe"`
		State         string `json:"state"`
		RTTUS         struct {
			Count uint64  `json:"count"`
			P95   float64 `json:"p95"`
		} `json:"rtt_us"`
		MsgsSent uint64 `json:"msgs_sent"`
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("metrics endpoint never reported done\nnode0:\n%s", outputs[0])
		}
		resp, err := http.Get("http://" + debugAddr + "/metrics")
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&doc)
			resp.Body.Close()
			if err != nil {
				t.Fatalf("decoding /metrics: %v", err)
			}
			if doc.State == "done" {
				break
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	if doc.SchemaVersion != 1 || doc.Node != 0 || doc.NumPE != 2 {
		t.Fatalf("metrics identity wrong: %+v", doc)
	}
	if doc.RTTUS.Count == 0 || doc.RTTUS.P95 <= 0 {
		t.Fatalf("no live RTT samples in /metrics: %+v", doc)
	}
	if doc.MsgsSent == 0 {
		t.Fatalf("final totals missing from /metrics: %+v", doc)
	}

	// pprof must be mounted on the same server.
	resp, err := http.Get("http://" + debugAddr + "/debug/pprof/cmdline")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof endpoint: %v %v", resp, err)
	}
	resp.Body.Close()

	// The lingering node 0 is still sleeping; node 1 should have exited
	// cleanly. Don't wait out the linger — kill via the process group is
	// overkill; just verify node 1 and let the test binary's exit reap it.
	wgDone := make(chan struct{})
	go func() { wg.Wait(); close(wgDone) }()
	select {
	case <-wgDone:
	case <-time.After(90 * time.Second):
		t.Fatal("nodes did not exit")
	}
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatalf("node %d failed: %v\n%s", i, errs[i], outputs[i])
		}
	}
}
