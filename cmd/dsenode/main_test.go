package main

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// freeAddrs reserves n loopback ports and releases them for the daemons.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// TestMultiProcessCluster builds the dsenode binary and runs a real
// three-OS-process DSE cluster over TCP — the full distributed deployment,
// exercised end to end.
func TestMultiProcessCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and spawns processes")
	}
	bin := filepath.Join(t.TempDir(), "dsenode")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building dsenode: %v", err)
	}

	addrs := freeAddrs(t, 3)
	joined := strings.Join(addrs, ",")
	outputs := make([]string, 3)
	errs := make([]error, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			cmd := exec.Command(bin,
				"-id", fmt.Sprint(i),
				"-addrs", joined,
				"-app", "knight", "-jobs", "8")
			out, err := cmd.CombinedOutput()
			outputs[i] = string(out)
			errs[i] = err
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("multi-process cluster did not finish")
	}
	for i := 0; i < 3; i++ {
		if errs[i] != nil {
			t.Fatalf("node %d failed: %v\n%s", i, errs[i], outputs[i])
		}
		if !strings.Contains(outputs[i], "total 304 tours") {
			t.Fatalf("node %d output missing tour count:\n%s", i, outputs[i])
		}
		if !strings.Contains(outputs[i], "done") {
			t.Fatalf("node %d did not shut down cleanly:\n%s", i, outputs[i])
		}
	}
}
