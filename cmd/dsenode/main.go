// Command dsenode runs one DSE kernel as its own operating-system process,
// joined to peers over real TCP — the fully distributed deployment of the
// runtime. Start one process per rank with the same address list:
//
//	dsenode -id 0 -addrs 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 &
//	dsenode -id 1 -addrs 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 &
//	dsenode -id 2 -addrs 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002
//
// Each process blocks until the full mesh is up, runs the selected SPMD
// application, prints its slice of the result, and exits after the global
// shutdown barrier.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/apps/gauss"
	"repro/internal/apps/knight"
	"repro/internal/core"
	"repro/internal/debugsrv"
	"repro/internal/sim"
	"repro/internal/ssi"
	"repro/internal/transport/tcpnet"
)

func main() {
	var (
		id     = flag.Int("id", -1, "this node's rank in the address list")
		addrs  = flag.String("addrs", "", "comma-separated host:port listen addresses, one per rank")
		app    = flag.String("app", "demo", "application: demo, gauss, knight")
		n      = flag.Int("n", 120, "gauss: system dimension")
		jobs   = flag.Int("jobs", 16, "knight: job count")
		debug  = flag.String("debug-addr", "", "serve /metrics JSON and /debug/pprof/ on this host:port")
		linger = flag.Duration("debug-linger", 0, "keep the debug server up this long after the run completes")
	)
	flag.Parse()

	list := strings.Split(*addrs, ",")
	if *addrs == "" || len(list) < 1 {
		fatalf("need -addrs with at least one address")
	}
	if *id < 0 || *id >= len(list) {
		fatalf("-id %d outside the %d-address list", *id, len(list))
	}

	node, err := tcpnet.Open(*id, list)
	if err != nil {
		fatalf("joining cluster: %v", err)
	}
	fmt.Printf("node %d: mesh of %d up on %s\n", node.ID(), node.N(), node.Hostname())

	var program core.Program
	switch *app {
	case "demo":
		program = demo
	case "gauss":
		program = func(pe *core.PE) error {
			r, err := gauss.Parallel(pe, gauss.Params{N: *n, Seed: 1})
			if err != nil {
				return err
			}
			if pe.ID() == 0 {
				fmt.Printf("node 0: gauss N=%d converged in %d sweeps, residual %.3g\n",
					*n, r.Sweeps, r.Residual)
			}
			return nil
		}
	case "knight":
		program = func(pe *core.PE) error {
			r, err := knight.Parallel(pe, knight.Params{BoardN: 5, Jobs: *jobs})
			if err != nil {
				return err
			}
			fmt.Printf("node %d: processed %d jobs; total %d tours\n", pe.ID(), r.Jobs, r.Tours)
			return nil
		}
	default:
		fatalf("unknown app %q (demo, gauss, knight)", *app)
	}

	cfg := core.Config{RequestTimeout: 30 * sim.Second}
	var ds *debugsrv.Server
	if *debug != "" {
		ds, err = debugsrv.Start(*debug, debugsrv.Config{Node: node.ID(), N: node.N()})
		if err != nil {
			fatalf("debug server: %v", err)
		}
		defer ds.Close()
		cfg.LiveRTT = ds.LiveRTT()
		fmt.Printf("node %d: debug server on http://%s/metrics\n", *id, ds.Addr())
	}

	res, err := core.RunOn(cfg, node, program)
	if err != nil {
		fatalf("%v", err)
	}
	if err := res.FirstErr(); err != nil {
		fatalf("program: %v", err)
	}
	if ds != nil {
		ds.Finish(res)
	}
	fmt.Printf("node %d: done, %s\n", *id, res.Total.String())
	if ds != nil && *linger > 0 {
		time.Sleep(*linger)
	}
}

// demo exercises the single-system image: every process contributes to a
// reduction and node 0 prints the cluster-wide process table.
func demo(pe *core.PE) error {
	sum := pe.AllReduceSum(float64(pe.ID() + 1))
	want := float64(pe.N()*(pe.N()+1)) / 2
	if sum != want {
		return fmt.Errorf("allreduce sum %v, want %v", sum, want)
	}
	pe.Barrier()
	if pe.ID() == 0 {
		view := ssi.NewView(pe)
		fmt.Println(view.Uname())
		for _, p := range view.Processes() {
			fmt.Printf("  gpid %d on kernel %d (%s): %v\n", p.GPID, p.Kernel, p.Host, p.State)
		}
	}
	pe.Barrier()
	return nil
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dsenode: "+format+"\n", args...)
	os.Exit(1)
}
