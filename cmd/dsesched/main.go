// Command dsesched runs the DSE cluster as a service: one resident SSI
// cluster, many jobs. It brings up a scheduler over `-workers` worker PEs
// and serves the Slurm-shaped job API over HTTP:
//
//	dsesched -workers 8 -addr :8080 &
//
//	# submit a 4-PE Gauss-Seidel job with a 32-block GM quota
//	curl -X POST localhost:8080/jobs -d \
//	  '{"name":"g1","pes":4,"workload":"gauss","size":64,"quota_blocks":32}'
//
//	curl localhost:8080/jobs/1     # status
//	curl localhost:8080/queue      # queue + per-job rows
//	curl -X DELETE localhost:8080/jobs/1   # cancel
//
// Every job runs in its own GM namespace (quota-bounded, kernel-enforced)
// on a gang of PEs picked by fair-share order with priority aging. The
// debug endpoint (-debug-addr) serves the node /metrics document extended
// with the scheduler's queue-depth/utilization gauges and per-job rows.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/debugsrv"
	"repro/internal/sched"
)

func main() {
	var (
		workers  = flag.Int("workers", 4, "worker PE count (the cluster runs workers+1 PEs)")
		capacity = flag.Uint64("capacity", 4096, "schedulable global memory, in blocks")
		shards   = flag.Int("shards", 0, "kernel service shards (0 = GOMAXPROCS; >1 enables the one-sided fast paths)")
		addr     = flag.String("addr", ":8080", "job API listen address")
		debug    = flag.String("debug-addr", "", "serve /metrics JSON and /debug/pprof/ on this host:port")
	)
	flag.Parse()

	c, err := sched.Start(sched.Config{
		Workers:        *workers,
		CapacityBlocks: *capacity,
		KernelShards:   *shards,
	})
	if err != nil {
		fatalf("%v", err)
	}
	s := c.Scheduler()
	fmt.Printf("dsesched: cluster of %d workers up (capacity %d blocks, workloads: %v)\n",
		*workers, *capacity, sched.Workloads())

	if *debug != "" {
		ds, err := debugsrv.Start(*debug, debugsrv.Config{
			Node: 0, N: *workers + 1,
			Sched: func() interface{} { return s.Stats() },
			Jobs:  s,
		})
		if err != nil {
			fatalf("debug server: %v", err)
		}
		defer ds.Close()
		fmt.Printf("dsesched: debug server on http://%s/metrics\n", ds.Addr())
	}

	api := &http.Server{Addr: *addr, Handler: sched.NewServer(s)}
	go func() {
		if err := api.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fatalf("job API: %v", err)
		}
	}()
	fmt.Printf("dsesched: job API on %s\n", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("dsesched: draining and shutting down")
	api.Close()
	res, err := c.Stop()
	if err != nil {
		fatalf("shutdown: %v", err)
	}
	st := s.Stats()
	fmt.Printf("dsesched: served %d jobs (%d done, %d failed, %d cancelled), utilization %.1f%%\n",
		st.Submitted, st.Done, st.Failed, st.Cancelled, 100*st.Utilization)
	if res != nil && res.Total.NsViolations > 0 {
		fmt.Printf("dsesched: WARNING: %d cross-namespace violations rejected\n", res.Total.NsViolations)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dsesched: "+format+"\n", args...)
	os.Exit(1)
}
