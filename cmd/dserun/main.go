// Command dserun executes one parallel application on a DSE cluster and
// prints its result together with the runtime's statistics breakdown.
//
// Usage examples:
//
//	dserun -app gauss -platform sunos -p 6 -n 600
//	dserun -app dct -platform linux -p 4 -block 16
//	dserun -app othello -platform aix -p 8 -depth 6
//	dserun -app knight -p 6 -jobs 16
//	dserun -app gauss -transport tcp -p 4 -n 120   # real loopback sockets
//	dserun -app gauss -p 4 -recover -kill 2@200ms  # survive a mid-run PE death
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/apps/dct"
	"repro/internal/apps/gauss"
	"repro/internal/apps/knight"
	"repro/internal/apps/othello"
	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/transport/simnet"
)

func main() {
	var (
		app       = flag.String("app", "gauss", "application: gauss, dct, othello, knight")
		plName    = flag.String("platform", "sunos", "platform: sunos, aix, linux")
		transport = flag.String("transport", "simnet", "transport: simnet, inproc, tcp")
		pes       = flag.Int("p", 4, "number of processors (DSE kernels)")
		seed      = flag.Uint64("seed", 1, "simulation / workload seed")
		caching   = flag.Bool("caching", false, "enable the DSM caching protocol")
		tree      = flag.Bool("tree-barrier", false, "use the tree barrier instead of the central one")
		switched  = flag.Bool("switched", false, "switched Ethernet instead of the shared bus")
		legacy    = flag.Bool("legacy", false, "model the old two-process DSE organisation")
		traceFile = flag.String("trace", "", "write a cluster-wide protocol trace to this file")
		blockW    = flag.Int("gm-block", 0, "DSM block size in words (0 = default)")
		recoverF  = flag.Bool("recover", false, "run under the checkpoint/restart recovery coordinator (survives -kill)")
		restarts  = flag.Int("restarts", 1, "recovery budget: maximum cluster restarts under -recover")
		ckptDir   = flag.String("ckpt-dir", "", "snapshot store directory for -recover (default: a fresh temp dir)")
		killSpec  = flag.String("kill", "", "fault schedule: kill one PE mid-run, as pe@time (e.g. 2@200ms; simnet only)")

		n     = flag.Int("n", 300, "gauss: system dimension")
		image = flag.Int("image", 256, "dct: image edge")
		block = flag.Int("block", 8, "dct: block edge")
		rate  = flag.Float64("rate", 0.5, "dct: compression rate")
		depth = flag.Int("depth", 5, "othello: search depth")
		jobs  = flag.Int("jobs", 16, "knight: job count")
		board = flag.Int("board", 5, "knight: board edge")
	)
	flag.Parse()

	pl, ok := platform.ByName(*plName)
	if !ok {
		fatalf("unknown platform %q (sunos, aix, linux)", *plName)
	}
	cfg := core.Config{
		NumPE:        *pes,
		Platform:     pl,
		Transport:    core.TransportKind(*transport),
		Seed:         *seed,
		Caching:      *caching,
		Switched:     *switched,
		Legacy:       *legacy,
		GMBlockWords: *blockW,
	}
	if *tree {
		cfg.Barrier = core.BarrierTree
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fatalf("creating trace file: %v", err)
		}
		defer f.Close()
		cfg.MessageLog = f
	}
	if *killSpec != "" {
		if cfg.Transport != core.TransportSim {
			fatalf("-kill needs the simulated transport (scheduled station failures are a simnet facility)")
		}
		victim, at, err := parseKill(*killSpec, *pes)
		if err != nil {
			fatalf("%v", err)
		}
		cfg.Kills = []simnet.Kill{{Node: victim, At: at}}
	}
	if *recoverF {
		dir := *ckptDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "dse-ckpt-")
			if err != nil {
				fatalf("creating snapshot dir: %v", err)
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		store, err := ckpt.OpenDir(dir)
		if err != nil {
			fatalf("opening snapshot store: %v", err)
		}
		cfg.Ckpt = &core.CheckpointConfig{Store: store}
	}

	var describe func()
	var program core.Program
	switch *app {
	case "gauss":
		if cfg.GMBlockWords == 0 {
			cfg.GMBlockWords = 256
		}
		p := gauss.Params{N: *n, Seed: *seed}
		var out *gauss.Result
		program = func(pe *core.PE) error {
			r, err := gauss.Parallel(pe, p)
			if err == nil && pe.ID() == 0 {
				out = r
			}
			return err
		}
		describe = func() {
			fmt.Printf("gauss: N=%d sweeps=%d residual=%.3g elapsed=%v\n",
				p.N, out.Sweeps, out.Residual, out.Elapsed)
		}
	case "dct":
		p := dct.Params{ImageN: *image, Block: *block, Rate: *rate, Seed: *seed}
		var out *dct.Result
		program = func(pe *core.PE) error {
			r, err := dct.Parallel(pe, p)
			if err == nil && pe.ID() == 0 {
				out = r
			}
			return err
		}
		describe = func() {
			recon := dct.Reconstruct(p, out.Coeffs)
			psnr := dct.PSNR(dct.BuildImage(p), recon)
			fmt.Printf("dct: image=%dx%d block=%d rate=%.0f%% blocks=%d psnr=%.1fdB elapsed=%v\n",
				p.ImageN, p.ImageN, p.Block, p.Rate*100, out.Blocks, psnr, out.Elapsed)
		}
	case "othello":
		p := othello.Params{Depth: *depth}
		var out *othello.Result
		program = func(pe *core.PE) error {
			r, err := othello.Parallel(pe, p)
			if err == nil && pe.ID() == 0 {
				out = r
			}
			return err
		}
		describe = func() {
			fmt.Printf("othello: depth=%d best=%c%d value=%d nodes=%d elapsed=%v\n",
				p.Depth, 'a'+rune(out.BestMove%8), out.BestMove/8+1, out.Value, out.Nodes, out.Elapsed)
		}
	case "knight":
		p := knight.Params{BoardN: *board, Jobs: *jobs}
		var out *knight.Result
		program = func(pe *core.PE) error {
			r, err := knight.Parallel(pe, p)
			if err == nil && pe.ID() == 0 {
				out = r
			}
			return err
		}
		describe = func() {
			fmt.Printf("knight: board=%dx%d jobs>=%d tours=%d nodes=%d elapsed=%v\n",
				p.BoardN, p.BoardN, p.Jobs, out.Tours, out.Nodes, out.Elapsed)
		}
	default:
		fatalf("unknown app %q (gauss, dct, othello, knight)", *app)
	}

	var (
		res    *core.Result
		recRep *core.RecoveryReport
		err    error
	)
	if *recoverF {
		// The reference applications keep their control flow in local
		// state, so the generic wrapper rolls a killed run back to the
		// start: one collective snapshot before the application begins
		// gives the coordinator a generation to restart from, and the
		// rerun replays the whole application.
		app := program
		wrapped := func(pe *core.PE) error {
			pe.RegisterCheckpoint(nil, nil)
			if cerr := pe.Checkpoint(); cerr != nil {
				return cerr
			}
			return app(pe)
		}
		res, recRep, err = core.RunWithRecovery(cfg, *restarts, wrapped)
	} else {
		res, err = core.Run(cfg, program)
	}
	if err != nil {
		fatalf("%v", err)
	}
	if err := res.FirstErr(); err != nil {
		fatalf("program: %v", err)
	}
	describe()
	if recRep != nil && recRep.Recovered() {
		for _, ev := range recRep.Recoveries {
			fmt.Printf("recovery: PEs %v died; coordinator %d restored generation %d (epoch %d), detected@%v, %d ops rolled back\n",
				ev.DeadPEs, ev.Coordinator, ev.Gen, ev.Epoch, ev.DetectedAt, ev.RollbackOps)
		}
	}
	fmt.Printf("cluster: %d PEs on %s via %s, total elapsed %v\n",
		cfg.NumPE, pl, cfg.Transport, res.Elapsed)
	fmt.Printf("totals:  %s\n", res.Total.String())
	if cfg.Transport == core.TransportSim {
		util := 0.0
		if res.Elapsed > 0 {
			util = float64(res.Bus.BusyTime) / float64(res.Elapsed) * 100
		}
		fmt.Printf("network: %d frames, %d payload bytes, %d collisions, %.1f%% utilisation\n",
			res.Bus.Frames, res.Bus.PayloadBytes, res.Bus.Collisions, util)
	}
	for i, s := range res.PerPE {
		fmt.Printf("  PE%-2d compute=%v comm=%v msgs=%d gm=%d local/%d remote\n",
			i, s.ComputeTime, s.CommTime(), s.MsgsSent+s.MsgsRecv, s.LocalGM, s.RemoteGM)
	}
	if res.RTT.Count > 0 {
		fmt.Printf("request round trips: %s\n%s", res.RTT.String(), res.RTT.Render(40))
	}
}

// parseKill decodes a pe@time fault-schedule entry like "2@200ms".
func parseKill(spec string, numPE int) (victim int, at sim.Duration, err error) {
	peStr, atStr, ok := strings.Cut(spec, "@")
	if !ok {
		return 0, 0, fmt.Errorf("bad -kill %q: want pe@time, e.g. 2@200ms", spec)
	}
	victim, err = strconv.Atoi(peStr)
	if err != nil || victim < 0 || victim >= numPE {
		return 0, 0, fmt.Errorf("bad -kill %q: PE must be 0..%d", spec, numPE-1)
	}
	d, err := time.ParseDuration(atStr)
	if err != nil || d <= 0 {
		return 0, 0, fmt.Errorf("bad -kill %q: bad time %q (e.g. 200ms, 1.5s)", spec, atStr)
	}
	return victim, sim.Duration(d), nil
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dserun: "+format+"\n", args...)
	os.Exit(1)
}
