// Imagecompress runs the paper's DCT-II workload as an application: it
// compresses a synthetic 128×128 grayscale image at several block sizes
// on a simulated PentiumII/Linux cluster, reporting compression quality
// (PSNR) and showing the paper's granularity effect — tiny blocks drown in
// communication, large blocks scale.
//
//	go run ./examples/imagecompress
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/dct"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sim"
)

func main() {
	const (
		image = 128
		pes   = 6
	)
	fmt.Printf("DCT-II compression of a %dx%d image at 50%% rate on %d simulated %s PCs\n",
		image, image, pes, platform.PentiumIILinux.Name)
	fmt.Printf("%-7s %-12s %-12s %-9s %s\n", "block", "1 proc", "6 procs", "speed-up", "PSNR")

	for _, block := range []int{4, 8, 16, 32} {
		params := dct.Params{ImageN: image, Block: block, Rate: 0.5, Seed: 3}
		t1 := run(1, params, nil)
		var quality float64
		t6 := run(pes, params, &quality)
		fmt.Printf("%-7s %-12v %-12v %-9.2f %.1f dB\n",
			fmt.Sprintf("%dx%d", block, block), t1, t6, float64(t1)/float64(t6), quality)
	}
}

// run compresses once on p simulated processors and returns the app-level
// execution time; if psnr is non-nil it also verifies the output quality.
func run(p int, params dct.Params, psnr *float64) sim.Duration {
	var out *dct.Result
	res, err := core.Run(core.Config{
		NumPE:    p,
		Platform: platform.PentiumIILinux,
		Seed:     1,
	}, func(pe *core.PE) error {
		r, err := dct.Parallel(pe, params)
		if err == nil && pe.ID() == 0 {
			out = r
		}
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.FirstErr(); err != nil {
		log.Fatal(err)
	}
	if psnr != nil {
		recon := dct.Reconstruct(params, out.Coeffs)
		*psnr = dct.PSNR(dct.BuildImage(params), recon)
	}
	return out.Elapsed
}
