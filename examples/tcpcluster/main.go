// Tcpcluster runs the identical SPMD program over real loopback TCP
// sockets instead of the simulator — the paper's portability claim in
// action: nothing in the application changes, only the transport. It also
// shows the single-system-image layer (global process table, cluster-wide
// name registry) over a real protocol stack.
//
//	go run ./examples/tcpcluster
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/ssi"
)

func main() {
	cfg := core.Config{
		NumPE:          4,
		Transport:      core.TransportTCP,
		RequestTimeout: 30 * sim.Second,
	}
	res, err := core.Run(cfg, program)
	if err != nil {
		log.Fatal(err)
	}
	if err := res.FirstErr(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("moved %d messages (%d bytes) over real TCP\n",
		res.Total.MsgsSent, res.Total.BytesSent)
}

func program(pe *core.PE) error {
	// A shared table in distributed global memory, found by name.
	reg := ssi.NewRegistry(pe, 16)
	table := pe.Alloc(64)
	if pe.ID() == 0 {
		if err := reg.Publish("squares", int64(table)); err != nil {
			return err
		}
	}
	pe.Barrier()

	base, ok := reg.Lookup("squares")
	if !ok {
		return fmt.Errorf("PE %d: name 'squares' not published", pe.ID())
	}
	for i := pe.ID(); i < 64; i += pe.N() {
		pe.GMWrite(uint64(base)+uint64(i), int64(i*i))
	}
	pe.Barrier()

	// Verify the whole table, wherever its words live.
	for i := 0; i < 64; i++ {
		if v := pe.GMRead(uint64(base) + uint64(i)); v != int64(i*i) {
			return fmt.Errorf("PE %d: squares[%d] = %d", pe.ID(), i, v)
		}
	}

	if pe.ID() == 0 {
		view := ssi.NewView(pe)
		fmt.Println(view.Uname())
		fmt.Printf("global process table: %d running DSE processes\n", len(view.Processes()))
	}
	pe.Barrier()
	return nil
}
