// Ssicluster tours the single-system-image layer on a simulated virtual
// cluster of 8 DSE kernels over 6 machines: one process table, one name
// space, one load picture and one liveness sweep — the user never deals
// with individual workstations.
//
//	go run ./examples/ssicluster
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/ssi"
)

func main() {
	cfg := core.Config{
		NumPE:          8, // more kernels than machines: a virtual cluster
		Platform:       platform.RS6000AIX,
		Seed:           1,
		RequestTimeout: 10 * sim.Second,
	}
	res, err := core.Run(cfg, program)
	if err != nil {
		log.Fatal(err)
	}
	if err := res.FirstErr(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncluster shut down after %v of virtual time\n", res.Elapsed)
}

func program(pe *core.PE) error {
	view := ssi.NewView(pe)
	reg := ssi.NewRegistry(pe, 32)

	// Every PE publishes a service under a global name.
	if err := reg.Publish(fmt.Sprintf("service/%d", pe.ID()), int64(1000+pe.ID())); err != nil {
		return err
	}
	pe.Barrier()

	if pe.ID() == 0 {
		fmt.Println(view.Uname())

		fmt.Println("\nglobal process table (one table, eight kernels, six machines):")
		byHost := map[string][]int64{}
		for _, p := range view.Processes() {
			byHost[p.Host] = append(byHost[p.Host], p.GPID)
		}
		hosts := make([]string, 0, len(byHost))
		for h := range byHost {
			hosts = append(hosts, h)
		}
		sort.Strings(hosts)
		for _, h := range hosts {
			fmt.Printf("  %s: gpids %v\n", h, byHost[h])
		}

		fmt.Println("\nname service:")
		for i := 0; i < pe.N(); i++ {
			name := fmt.Sprintf("service/%d", i)
			v, ok := reg.Lookup(name)
			fmt.Printf("  %-10s -> %d (found=%v)\n", name, v, ok)
		}

		fmt.Println("\nliveness sweep:")
		for _, st := range view.ProbePeers() {
			fmt.Printf("  kernel %d alive=%v rtt=%v\n", st.Kernel, st.Alive, st.RTT)
		}

		fmt.Printf("\nload-aware placement would pick kernel %d next\n", view.LeastLoadedKernel())
	}
	pe.Barrier()
	return nil
}
