// Knightstour enumerates every knight's tour of the 5×5 board from the
// corner square, sweeping the job granularity the way the paper's Figures
// 19-21 do: too few jobs starve the processors, too many pay communication
// for every crumb of work.
//
//	go run ./examples/knightstour
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/knight"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sim"
)

func main() {
	const pes = 6
	fmt.Printf("5x5 knight's tours from a1 on %d simulated %s workstations\n",
		pes, platform.SparcSunOS.Name)
	fmt.Printf("%-7s %-8s %-12s %-9s %s\n", "jobs", "tours", "exec time", "speed-up", "balance (jobs per PE)")

	// One-processor baseline (job split does not matter at p=1).
	base := timeOf(1, 16, nil)

	for _, jobs := range []int{2, 8, 16, 64} {
		perPE := make([]int, pes)
		elapsed := timeOf(pes, jobs, perPE)
		var tours int64 = 304 // classical result, verified by the run below
		fmt.Printf("%-7d %-8d %-12v %-9.2f %v\n",
			jobs, tours, elapsed, float64(base)/float64(elapsed), perPE)
	}
}

// timeOf runs the enumeration and returns the app-level execution time;
// perPE (if non-nil) receives each PE's processed job count.
func timeOf(p, jobs int, perPE []int) (elapsed sim.Duration) {
	res, err := core.Run(core.Config{
		NumPE:    p,
		Platform: platform.SparcSunOS,
		Seed:     1,
	}, func(pe *core.PE) error {
		r, err := knight.Parallel(pe, knight.Params{BoardN: 5, Jobs: jobs})
		if err != nil {
			return err
		}
		if r.Tours != 304 {
			return fmt.Errorf("tour count %d, expected 304", r.Tours)
		}
		if pe.ID() == 0 {
			elapsed = r.Elapsed
		}
		if perPE != nil {
			perPE[pe.ID()] = r.Jobs
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.FirstErr(); err != nil {
		log.Fatal(err)
	}
	return elapsed
}
