// Linsolve runs the paper's Gauss-Seidel workload through the public API:
// it solves a 400-dimensional dense system on 1..8 simulated processors and
// prints the execution-time/speed-up rows of paper Figure 4/5 for that
// size, plus the residual so you can see the answer is actually right.
//
//	go run ./examples/linsolve
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/gauss"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sim"
)

func main() {
	const n = 400
	params := gauss.Params{N: n, Seed: 7}

	fmt.Printf("Gauss-Seidel, N=%d, %s\n", n, platform.SparcSunOS)
	fmt.Printf("%-6s %-12s %-9s %-8s %s\n", "procs", "exec time", "speed-up", "sweeps", "residual")

	var base sim.Duration
	for p := 1; p <= 8; p++ {
		var out *gauss.Result
		res, err := core.Run(core.Config{
			NumPE:        p,
			Platform:     platform.SparcSunOS,
			Seed:         1,
			GMBlockWords: 256,
		}, func(pe *core.PE) error {
			r, err := gauss.Parallel(pe, params)
			if err == nil && pe.ID() == 0 {
				out = r
			}
			return err
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := res.FirstErr(); err != nil {
			log.Fatal(err)
		}
		if p == 1 {
			base = out.Elapsed
		}
		fmt.Printf("%-6d %-12v %-9.2f %-8d %.2g\n",
			p, out.Elapsed, float64(base)/float64(out.Elapsed), out.Sweeps, out.Residual)
	}
}
