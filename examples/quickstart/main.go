// Quickstart: the smallest useful DSE program. Six processor elements
// estimate π by numerically integrating 4/(1+x²) over [0,1]: each PE
// integrates its stripe, the partial sums meet in an AllReduce, and global
// memory carries a shared progress counter just to show the DSM at work.
//
// Run it on the simulated SparcStation cluster:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/platform"
)

func main() {
	const (
		pes   = 6
		steps = 1_000_000
	)
	cfg := core.Config{
		NumPE:    pes,
		Platform: platform.SparcSunOS,
		Seed:     1,
	}
	var pi float64
	res, err := core.Run(cfg, func(pe *core.PE) error {
		// A shared counter in global memory: every PE bumps it per chunk.
		progress := pe.Alloc(1)

		h := 1.0 / steps
		sum := 0.0
		for i := pe.ID(); i < steps; i += pe.N() {
			x := (float64(i) + 0.5) * h
			sum += 4 / (1 + x*x)
		}
		pe.Compute(float64(steps/pe.N()) * 6) // ~6 flops per step
		pe.FetchAdd(progress, 1)

		total := pe.AllReduceSum(sum * h)
		if pe.ID() == 0 {
			pi = total
			done := pe.GMRead(progress)
			fmt.Printf("all %d PEs reported in (%d chunks)\n", pe.N(), done)
		}
		pe.Barrier()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.FirstErr(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pi ≈ %.9f (virtual time %v on %d simulated %s workstations)\n",
		pi, res.Elapsed, pes, platform.SparcSunOS.Name)
}
