// Gametree plays a move of Othello with the paper's parallel game-tree
// search: it shows the board, searches the position at increasing depths
// on a simulated RS/6000 cluster and reports how the deeper searches reward
// parallelism while the shallow ones do not.
//
//	go run ./examples/gametree
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/othello"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sim"
)

func main() {
	pos := othello.MidgamePosition(10)
	fmt.Printf("midgame position (o to move, %d legal moves):\n%s\n",
		len(othello.MoveList(pos.Moves())), pos)

	fmt.Printf("%-7s %-10s %-12s %-12s %-9s %s\n",
		"depth", "best", "1 proc", "6 procs", "speed-up", "nodes")
	for _, depth := range []int{3, 5, 7} {
		params := othello.Params{Depth: depth}
		r1, t1 := search(1, params)
		_, t6 := search(6, params)
		fmt.Printf("%-7d %-10s %-12v %-12v %-9.2f %d\n",
			depth, square(r1.BestMove), t1, t6, float64(t1)/float64(t6), r1.Nodes)
	}
}

func square(sq int) string {
	return fmt.Sprintf("%c%d", 'a'+rune(sq%8), sq/8+1)
}

func search(p int, params othello.Params) (*othello.Result, sim.Duration) {
	var out *othello.Result
	res, err := core.Run(core.Config{
		NumPE:    p,
		Platform: platform.RS6000AIX,
		Seed:     1,
	}, func(pe *core.PE) error {
		r, err := othello.Parallel(pe, params)
		if err == nil && pe.ID() == 0 {
			out = r
		}
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.FirstErr(); err != nil {
		log.Fatal(err)
	}
	return out, out.Elapsed
}
